package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// testOptions is small enough for CI but large enough that every shape
// assertion below is stable.
func testOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.02
	return o
}

func series(t *testing.T, fig *stats.Figure, name string) *stats.Series {
	t.Helper()
	s := fig.FindSeries(name)
	if s == nil {
		t.Fatalf("figure %s has no series %q", fig.ID, name)
	}
	return s
}

func ys(s *stats.Series) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Y
	}
	return out
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 18 {
		t.Fatalf("registry has %d entries", len(reg))
	}
	for _, e := range reg {
		if _, err := Lookup(e.ID); err != nil {
			t.Errorf("Lookup(%q): %v", e.ID, err)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTable1(t *testing.T) {
	fig, err := Table1(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	meas := series(t, fig, "measured")
	byLabel := map[string]float64{}
	for _, p := range meas.Points {
		byLabel[p.Label] = p.Y
	}
	local := byLabel["local access (µs)"]
	r1 := byLabel["remote access, 1 hop(s) (µs)"]
	r6 := byLabel["remote access, 6 hop(s) (µs)"]
	if !(local < r1 && r1 < r6) {
		t.Errorf("latency ordering violated: local %v, 1-hop %v, 6-hop %v", local, r1, r6)
	}
	// The remote/local gap is the paper's motivation: around 10x here,
	// far below Violin's OS-mediated 3 µs.
	if r1/local < 3 || r1/local > 40 {
		t.Errorf("remote/local ratio %v outside the plausible band", r1/local)
	}
	if r1 > 3.0 {
		t.Errorf("1-hop remote access %v µs should beat Violin's 3 µs", r1)
	}
}

func TestFig6Shape(t *testing.T) {
	fig, err := Fig6(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	remote := ys(series(t, fig, "remote memory (measured)"))
	local := ys(series(t, fig, "local memory"))
	if len(remote) != 6 {
		t.Fatalf("expected 6 hop points, got %d", len(remote))
	}
	for i := 1; i < len(remote); i++ {
		if remote[i] <= remote[i-1] {
			t.Errorf("latency not increasing at hop %d: %v", i+1, remote)
		}
	}
	// Roughly linear: per-hop increments within 2x of each other.
	first, last := remote[1]-remote[0], remote[5]-remote[4]
	if last > 2*first || first > 2*last {
		t.Errorf("hop increments not linear: %v vs %v", first, last)
	}
	if remote[0] < 5*local[0] {
		t.Errorf("1-hop remote (%v) should be far above local (%v)", remote[0], local[0])
	}
}

func TestFig7Shape(t *testing.T) {
	fig, err := Fig7(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	one := ys(series(t, fig, "1 server"))
	four := ys(series(t, fig, "4 servers"))
	t1, t2, t4 := one[0], one[1], one[2]
	// Two threads halve the time (within 10%).
	if ratio := t1 / t2; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("2-thread speedup = %.2f, want ~2", ratio)
	}
	// Four threads do NOT halve again: the client RMC saturates.
	if t4 < 0.7*t2 {
		t.Errorf("4 threads too fast (%.3f vs %.3f): no saturation", t4, t2)
	}
	// Four servers at one hop don't beat one server (the client is the
	// bottleneck, within 5%).
	if four[0] < 0.95*t4 || four[0] > 1.05*t4 {
		t.Errorf("4 servers (%.3f) should match 1 server (%.3f) at 4 threads", four[0], t4)
	}
	// The paper's inversion: farther servers are (slightly) faster.
	h1, h2, h3 := four[0], four[1], four[2]
	if !(h3 < h2 && h2 < h1) {
		t.Errorf("no inversion: 1 hop %.3f, 2 hops %.3f, 3 hops %.3f", h1, h2, h3)
	}
	// But only slightly: within 40%.
	if h3 < 0.6*h1 {
		t.Errorf("inversion too strong: %.3f vs %.3f", h3, h1)
	}
}

func TestFig8Shape(t *testing.T) {
	fig, err := Fig8(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctrl := ys(series(t, fig, "control thread"))
	if len(ctrl) != 9 {
		t.Fatalf("expected 9 load points, got %d", len(ctrl))
	}
	// Flat through 3 nodes x 4 threads (points 0..5 within 10%).
	for i := 1; i <= 5; i++ {
		if ctrl[i] > 1.1*ctrl[0] {
			t.Errorf("control degraded too early at point %d: %.3f vs %.3f", i, ctrl[i], ctrl[0])
		}
	}
	// Then rising: the last point well above the flat region, and the
	// tail monotone.
	if ctrl[8] < 1.5*ctrl[0] {
		t.Errorf("server congestion never materialized: %.3f vs %.3f", ctrl[8], ctrl[0])
	}
	if !(ctrl[6] <= ctrl[7] && ctrl[7] <= ctrl[8]) {
		t.Errorf("tail not monotone: %v", ctrl[6:])
	}
}

func TestFig9Shape(t *testing.T) {
	fig, err := Fig9(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	sw := series(t, fig, "remote swap")
	rm := series(t, fig, "remote memory")
	// Find the swap minimum.
	minI := 0
	for i, p := range sw.Points {
		if p.Y < sw.Points[minI].Y {
			minI = i
		}
	}
	bestFanout := sw.Points[minI].X
	if bestFanout < 96 || bestFanout > 256 {
		t.Errorf("swap optimum at fanout %v, want near 168 (one-page nodes)", bestFanout)
	}
	// U-shape: endpoints well above the minimum.
	first, last, minY := sw.Points[0].Y, sw.Points[len(sw.Points)-1].Y, sw.Points[minI].Y
	if first < 1.5*minY || last < 1.5*minY {
		t.Errorf("no U-shape: ends %v/%v vs min %v", first, last, minY)
	}
	// Remote memory is comparatively flat: max/min < 2.
	rmin, rmax := rm.Points[0].Y, rm.Points[0].Y
	for _, p := range rm.Points {
		if p.Y < rmin {
			rmin = p.Y
		}
		if p.Y > rmax {
			rmax = p.Y
		}
	}
	if rmax/rmin > 2 {
		t.Errorf("remote memory series not flat: %v..%v", rmin, rmax)
	}
	// And far below swap at the optimum.
	if rm.Points[minI].Y > minY/3 {
		t.Errorf("remote memory (%v) should dominate swap's best (%v)", rm.Points[minI].Y, minY)
	}
}

func TestFig10Shape(t *testing.T) {
	fig, err := Fig10(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rm := ys(series(t, fig, "remote memory"))
	sw := ys(series(t, fig, "remote swap"))
	n := len(rm)
	// Remote memory grows gently: largest/smallest tree within ~3x.
	if rm[n-1] > 3*rm[0] {
		t.Errorf("remote memory grew %vx across the sweep, want gentle growth", rm[n-1]/rm[0])
	}
	// Remote swap explodes once the tree outgrows residency: the last
	// point is at least 20x its first and at least 5x remote memory.
	if sw[n-1] < 20*sw[0] {
		t.Errorf("swap did not blow up: %v -> %v", sw[0], sw[n-1])
	}
	if sw[n-1] < 5*rm[n-1] {
		t.Errorf("swap (%v) should be far above remote memory (%v) at scale", sw[n-1], rm[n-1])
	}
	// Before the blow-up, swap can win (high locality in a small tree):
	// the curves cross, as the crossover analysis predicts.
	if sw[0] > rm[0] {
		t.Logf("note: swap did not start below remote memory (%v vs %v)", sw[0], rm[0])
	}
}

func TestFig11Shape(t *testing.T) {
	fig, err := Fig11(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	get := func(seriesName, bench string) float64 {
		s := series(t, fig, seriesName)
		for _, p := range s.Points {
			if p.Label == bench {
				return p.Y
			}
		}
		t.Fatalf("series %q has no point %q", seriesName, bench)
		return 0
	}
	for _, bench := range []string{"blackscholes", "raytrace", "canneal", "streamcluster"} {
		local := get("local memory", bench)
		remote := get("remote memory", bench)
		rswap := get("remote swap", bench)
		if remote < local {
			t.Errorf("%s: remote (%v) beat local (%v)", bench, remote, local)
		}
		switch bench {
		case "blackscholes", "raytrace":
			if r := rswap / remote; r < 1.5 || r > 10 {
				t.Errorf("%s: swap/remote = %.2f, want a clear but bounded penalty (~2x in the paper)", bench, r)
			}
		case "canneal":
			if rswap/remote < 20 {
				t.Errorf("canneal: swap/remote = %.1f, should be prohibitive", rswap/remote)
			}
			if remote/local < 1.5 || remote/local > 20 {
				t.Errorf("canneal: remote/local = %.2f, want noticeable but feasible", remote/local)
			}
		case "streamcluster":
			if rswap/local > 1.25 {
				t.Errorf("streamcluster: swap/local = %.2f, should converge", rswap/local)
			}
		}
	}
}

func TestEquationsAgree(t *testing.T) {
	fig, err := Equations(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	eq1 := ys(series(t, fig, "Eq(1) remote swap"))
	m1 := ys(series(t, fig, "measured swap"))
	eq2 := ys(series(t, fig, "Eq(2) remote memory"))
	m2 := ys(series(t, fig, "measured remote"))
	for i := range eq1 {
		if diff := abs(eq1[i]-m1[i]) / eq1[i]; diff > 0.01 {
			t.Errorf("Eq1 vs measured at point %d: %v vs %v", i, eq1[i], m1[i])
		}
		if diff := abs(eq2[i]-m2[i]) / eq2[i]; diff > 0.01 {
			t.Errorf("Eq2 vs measured at point %d: %v vs %v", i, eq2[i], m2[i])
		}
	}
	if len(fig.Notes) == 0 || !strings.Contains(fig.Notes[0], "crossover") {
		t.Error("missing crossover note")
	}
}

func TestAblationCoherencyShape(t *testing.T) {
	fig, err := AblationCoherency(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	coh := ys(series(t, fig, "coherent DSM (directory MSI)"))
	rmc := ys(series(t, fig, "non-coherent RMC region"))
	for i := 1; i < len(coh); i++ {
		if coh[i] <= coh[i-1] {
			t.Errorf("coherent write cost not growing at point %d: %v", i, coh)
		}
	}
	// The RMC side stays within a narrow band while the coherent side
	// at least quadruples.
	if rmc[len(rmc)-1] > 2.5*rmc[0] {
		t.Errorf("RMC series not flat: %v", rmc)
	}
	if coh[len(coh)-1] < 4*coh[0] {
		t.Errorf("coherent series did not grow enough: %v", coh)
	}
	// At scale, coherency costs dominate the flat RMC write.
	if coh[len(coh)-1] < 3*rmc[len(rmc)-1] {
		t.Errorf("coherent (%v) should far exceed RMC (%v) at 15 sharers", coh[len(coh)-1], rmc[len(rmc)-1])
	}
}

func TestAblationWindowShape(t *testing.T) {
	fig, err := AblationWindow(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := ys(series(t, fig, "1 thread, 1 server, 1 hop"))
	// Monotone non-increasing, with a big first step (window 1 -> 2).
	for i := 1; i < len(s); i++ {
		if s[i] > 1.02*s[i-1] {
			t.Errorf("widening the window slowed things down at point %d: %v", i, s)
		}
	}
	if s[0] < 1.5*s[1] {
		t.Errorf("window 1 -> 2 should nearly halve time: %v", s)
	}
}

func TestAblationRetryShape(t *testing.T) {
	fig, err := AblationRetry(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	near := ys(series(t, fig, "4 servers, 1 hop"))
	far := ys(series(t, fig, "4 servers, 3 hops"))
	// Depth 1 shows the inversion...
	if near[0] <= far[0] {
		t.Errorf("no inversion at depth 1: near %v vs far %v", near[0], far[0])
	}
	// ...and a deep queue removes it (near <= far within 2%).
	last := len(near) - 1
	if near[last] > 1.02*far[last] {
		t.Errorf("inversion persists at depth 8: near %v vs far %v", near[last], far[last])
	}
}

func TestAblationPrefetchShape(t *testing.T) {
	fig, err := AblationPrefetch(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	seq := ys(series(t, fig, "sequential stream over remote memory"))
	rnd := ys(series(t, fig, "random accesses (unaffected)"))
	local := ys(series(t, fig, "local memory reference"))
	// Sequential: monotone non-increasing in depth, with a real win.
	for i := 1; i < len(seq); i++ {
		if seq[i] > 1.02*seq[i-1] {
			t.Errorf("deeper prefetch slowed the stream at point %d: %v", i, seq)
		}
	}
	if seq[len(seq)-1] > 0.7*seq[0] {
		t.Errorf("prefetch gained only %v -> %v", seq[0], seq[len(seq)-1])
	}
	// It approaches but cannot beat the client-RMC occupancy floor.
	floor := float64(testOptions().P.RMCClientOccupancy) / 1e6
	if seq[len(seq)-1] < floor {
		t.Errorf("stream (%v µs/line) beat the RMC occupancy floor (%v)", seq[len(seq)-1], floor)
	}
	if seq[len(seq)-1] < local[0] {
		t.Errorf("prefetched remote (%v) beat local (%v)", seq[len(seq)-1], local[0])
	}
	// Random traffic is untouched (within 2%).
	for i := 1; i < len(rnd); i++ {
		if rnd[i] < 0.98*rnd[0] || rnd[i] > 1.02*rnd[0] {
			t.Errorf("prefetch depth changed random-access time: %v", rnd)
		}
	}
}

func TestAblationParallelPhaseShape(t *testing.T) {
	fig, err := AblationParallelPhase(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	read := ys(series(t, fig, "read-only phase"))
	// 1 -> 2 threads scales nearly ideally; beyond that the client RMC
	// binds (no further halving).
	if r := read[0] / read[1]; r < 1.8 || r > 2.2 {
		t.Errorf("2-thread read phase speedup = %.2f", r)
	}
	if read[3] < 0.5*read[1] {
		t.Errorf("8 threads kept scaling past the RMC bound: %v", read)
	}
	// And crucially: it ran at all — multi-threaded reads over remote
	// data after a flush are legal, unlike multi-threaded writes.
	for i, v := range read {
		if v <= 0 {
			t.Errorf("point %d nonpositive: %v", i, v)
		}
	}
}

func TestScaledFloor(t *testing.T) {
	o := Options{Scale: 0.0001}
	if got := o.scaled(1000, 50); got != 50 {
		t.Errorf("scaled floor = %d", got)
	}
	o.Scale = 2
	if got := o.scaled(1000, 50); got != 2000 {
		t.Errorf("scaled = %d", got)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestAblationFabricShape(t *testing.T) {
	fig, err := AblationFabric(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	mesh := ys(series(t, fig, "2D mesh (prototype)"))
	eth := ys(series(t, fig, "HT-over-Ethernet (switched)"))
	// Mesh grows with distance; HToE is flat.
	for i := 1; i < len(mesh); i++ {
		if mesh[i] <= mesh[i-1] {
			t.Errorf("mesh latency not growing: %v", mesh)
		}
		if eth[i] != eth[0] {
			t.Errorf("switched fabric not distance-blind: %v", eth)
		}
	}
	// On a 16-node cluster the mesh wins everywhere — the prototype's
	// fabric choice — but the switched constant is within one order of
	// magnitude (it is a viable fabric, as the paper suggests).
	for i := range mesh {
		if mesh[i] >= eth[i] {
			t.Errorf("mesh lost at %d hops: %v vs %v", i+1, mesh[i], eth[i])
		}
	}
	if eth[0] > 10*mesh[0] {
		t.Errorf("HToE constant %v implausibly high vs mesh %v", eth[0], mesh[0])
	}
}

func TestApplyParam(t *testing.T) {
	p := DefaultOptions().P
	if err := ApplyParam(&p, "RMCClientOccupancy", "200ns"); err != nil {
		t.Fatal(err)
	}
	if p.RMCClientOccupancy != 200*1000 {
		t.Errorf("occupancy = %d ps", p.RMCClientOccupancy)
	}
	if err := ApplyParam(&p, "RMCQueueDepth", "4"); err != nil {
		t.Fatal(err)
	}
	if p.RMCQueueDepth != 4 {
		t.Errorf("queue depth = %d", p.RMCQueueDepth)
	}
	if err := ApplyParam(&p, "HopLatency", "1.5us"); err != nil {
		t.Fatal(err)
	}
	if p.HopLatency != 1500*1000 {
		t.Errorf("hop = %d ps", p.HopLatency)
	}
	if err := ApplyParam(&p, "Nope", "1"); err == nil {
		t.Error("unknown knob accepted")
	}
	if err := ApplyParam(&p, "RMCQueueDepth", "xyz"); err == nil {
		t.Error("bad int accepted")
	}
	if err := ApplyParam(&p, "DRAMLatency", "fast"); err == nil {
		t.Error("bad duration accepted")
	}
	// Every advertised knob must actually apply.
	for _, k := range SweepableParams() {
		q := DefaultOptions().P
		v := "7"
		switch k {
		case "RMCQueueDepth", "RemoteOutstanding", "PrefetchDepth", "SwapResidentPages":
		default:
			v = "7us"
		}
		if err := ApplyParam(&q, k, v); err != nil {
			t.Errorf("advertised knob %s rejected: %v", k, err)
		}
	}
}

func TestParseSweep(t *testing.T) {
	key, vals, err := ParseSweep("HopLatency=100ns,200ns,300ns")
	if err != nil || key != "HopLatency" || len(vals) != 3 || vals[1] != "200ns" {
		t.Errorf("ParseSweep = %q, %v, %v", key, vals, err)
	}
	for _, bad := range []string{"", "NoEquals", "=v", "K=", "K=a,,b"} {
		if _, _, err := ParseSweep(bad); err == nil {
			t.Errorf("ParseSweep(%q) accepted", bad)
		}
	}
}

func TestAblationIndexesShape(t *testing.T) {
	fig, err := AblationIndexes(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	bt := ys(series(t, fig, "b-tree (fanout 168)"))
	h := ys(series(t, fig, "hash index"))
	// Remote memory (point 1): the hash index wins by ~an order of
	// magnitude — footnote 3's claim.
	if bt[1]/h[1] < 5 {
		t.Errorf("hash advantage in remote memory = %.1fx, want >= 5x", bt[1]/h[1])
	}
	// Remote swap (point 2): the structures converge within 2x.
	if r := bt[2] / h[2]; r < 0.5 || r > 2 {
		t.Errorf("swap ratio = %.2f, structures should converge", r)
	}
	// Both obey local < remote < swap.
	for _, s := range [][]float64{bt, h} {
		if !(s[0] < s[1] && s[1] < s[2]) {
			t.Errorf("config ordering violated: %v", s)
		}
	}
}

func TestBulkScanShape(t *testing.T) {
	fig, err := BulkScan(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	cr := ys(series(t, fig, "pointer chase, remote"))
	br := ys(series(t, fig, "bulk scan, remote"))
	cl := ys(series(t, fig, "pointer chase, local"))
	bl := ys(series(t, fig, "bulk scan, local"))
	// The acceptance bar: at 4 KiB (point 0), one remote burst is
	// measurably cheaper than 64 dependent single-line accesses.
	if br[0]*4 >= cr[0] {
		t.Errorf("4 KiB remote: bulk %v µs vs chase %v µs; want at least 4x cheaper", br[0], cr[0])
	}
	// Bulk collapses the remote/local ratio.
	if (br[0]/bl[0])*2 >= cr[0]/cl[0] {
		t.Errorf("remote/local ratio: bulk %.1fx vs chase %.1fx; bursts should narrow the gap",
			br[0]/bl[0], cr[0]/cl[0])
	}
	// Every shape grows with transfer size, and bulk stays under the
	// chase at every point.
	for i := 1; i < len(cr); i++ {
		if !(cr[i] > cr[i-1] && br[i] > br[i-1]) {
			t.Errorf("point %d: scan times not monotone in size", i)
		}
		if br[i] >= cr[i] {
			t.Errorf("point %d: remote bulk %v µs not under chase %v µs", i, br[i], cr[i])
		}
	}
	if len(fig.Notes) < 2 {
		t.Error("figure is missing its ratio notes")
	}
}
