package experiments

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// AblationPrefetch evaluates the paper's named future work: a
// sequential prefetcher in front of the RMC. A single thread streams
// sequentially over remote memory (the pattern blackscholes-class
// applications produce); sweeping the prefetch depth shows the per-line
// cost collapsing from the full remote round trip toward the local
// figure, while the random benchmark is unaffected (streams only).
func AblationPrefetch(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("ablationD", "Sequential prefetching (the paper's future work)",
		"prefetch depth (lines ahead)", "time per line (µs)")
	seq := fig.AddSeries("sequential stream over remote memory")
	rnd := fig.AddSeries("random accesses (unaffected)")
	localRef := fig.AddSeries("local memory reference")

	lines := o.scaled(40000, 800)
	depths := []int{0, 1, 2, 4, 8}
	type depthPoint struct {
		seq, rnd         float64
		seqSnap, rndSnap metrics.Snapshot
	}
	points, err := runner.Map(o.Parallel, len(depths), func(i int) (depthPoint, error) {
		depth := depths[i]
		p := o.P
		p.PrefetchDepth = depth
		// Prefetch traffic shares the client RMC with demand traffic;
		// give the RMC a queue deep enough to hold the stream.
		if depth > 0 && p.RMCQueueDepth < depth+1 {
			p.RMCQueueDepth = depth + 1
		}
		ow := o
		ow.P = p

		elapsed, seqSnap, err := runSequential(ow, lines)
		if err != nil {
			return depthPoint{}, err
		}
		pt := depthPoint{seq: usPerOp(elapsed, lines), seqSnap: seqSnap}

		servers, err := serversAt(ow, 1, 1, 1)
		if err != nil {
			return depthPoint{}, err
		}
		res, err := (microRun{Client: 1, Servers: servers, Threads: 1, AccessesPerThread: lines}).run(ow)
		if err != nil {
			return depthPoint{}, err
		}
		pt.rnd = usPerOp(res.Elapsed, lines)
		pt.rndSnap = res.Metrics
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	for i, depth := range depths {
		o.addMetrics(points[i].seqSnap)
		o.addMetrics(points[i].rndSnap)
		seq.Add(float64(depth), points[i].seq)
		rnd.Add(float64(depth), points[i].rnd)
		localRef.Add(float64(depth),
			float64(o.P.DRAMLatency+o.P.DRAMOccupancy+o.P.L1Latency)/float64(params.Microsecond))
	}
	fig.Note("depth 0 is the prototype; deeper prefetch hides the fabric round trip behind the stream")
	fig.Note("the curve floors at the client RMC's %.2f µs service occupancy — prefetching hides latency, not occupancy; closing the rest of the gap needs the ASIC RMC the paper also proposes",
		float64(o.P.RMCClientOccupancy)/float64(params.Microsecond))
	return fig, nil
}

// runSequential streams one thread over consecutive remote lines and
// returns the elapsed time plus the run's metrics snapshot.
func runSequential(o Options, lines int) (sim.Time, metrics.Snapshot, error) {
	sys, err := core.NewSystem(o.P)
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	region, err := sys.Region(1)
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	need := uint64(lines+64) * params.CacheLineSize
	rng, err := region.GrowFrom(2, need)
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	node, err := sys.Cluster().Node(1)
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	i := 0
	stream := cpu.FuncStream(func() (cpu.Access, bool) {
		if i >= lines {
			return cpu.Access{}, false
		}
		a := rng.Start + addr.Phys(uint64(i)*params.CacheLineSize)
		i++
		return cpu.Access{Addr: a}, true
	})
	p := sys.Params()
	th, err := cpu.NewThread(cpu.ThreadConfig{
		Name: "seq", Engine: node.Engine(), Memory: node, Stream: stream,
		WindowLocal: p.LocalOutstanding, WindowRemote: p.RemoteOutstanding,
	})
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	th.Start(0)
	sys.Run()
	if !th.Done {
		return 0, metrics.Snapshot{}, fmt.Errorf("experiments: sequential stream did not finish")
	}
	return th.Elapsed(), sys.Registry().Snapshot(), nil
}

// AblationParallelPhase demonstrates the prototype's concession and its
// escape hatch (paper Section IV-B): writable remote data restricts the
// application to one core, but a *read-only* phase — after flushing the
// caches — can run with several threads, because reads of unshared,
// unwritten remote memory need no coherency at all. Throughput scales
// with threads until the client RMC's service rate binds, exactly like
// Figure 7's read curves.
func AblationParallelPhase(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("ablationE", "Read-only parallel phase after a serial write phase",
		"threads in the read-only phase", "phase time (ms)")
	readPhase := fig.AddSeries("read-only phase")
	ideal := fig.AddSeries("ideal scaling")

	totalReads := o.scaled(60000, 1200)
	threadCounts := []int{1, 2, 4, 8}
	times, err := runner.Map(o.Parallel, len(threadCounts), func(i int) (timedPoint, error) {
		elapsed, snap, err := runParallelPhase(o, threadCounts[i], totalReads)
		if err != nil {
			return timedPoint{}, err
		}
		return timedPoint{float64(elapsed) / float64(params.Millisecond), snap}, nil
	})
	if err != nil {
		return nil, err
	}
	base := times[0].v // the 1-thread phase anchors the ideal-scaling line
	for i, threads := range threadCounts {
		o.addMetrics(times[i].snap)
		readPhase.Add(float64(threads), times[i].v)
		ideal.Add(float64(threads), base/float64(threads))
	}
	fig.Note("a serial write phase plus cache flush precedes each measurement; scaling saturates at the client RMC like Fig 7")
	return fig, nil
}

// runParallelPhase writes a remote buffer with one thread, flushes the
// node's caches, then measures a read-only phase with the given number
// of threads. Returns the phase time and the run's metrics snapshot.
func runParallelPhase(o Options, threads, totalReads int) (sim.Time, metrics.Snapshot, error) {
	sys, err := core.NewSystem(o.P)
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	region, err := sys.Region(1)
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	rng, err := region.GrowFrom(2, 64<<20)
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	node, err := sys.Cluster().Node(1)
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	p := sys.Params()
	eng := node.Engine()

	// Serial write phase: one core writes the first lines of the buffer.
	writeLines := o.scaled(2000, 100)
	wi := 0
	writeStream := cpu.FuncStream(func() (cpu.Access, bool) {
		if wi >= writeLines {
			return cpu.Access{}, false
		}
		a := rng.Start + addr.Phys(uint64(wi)*params.CacheLineSize)
		wi++
		return cpu.Access{Addr: a, Write: true}, true
	})
	wt, err := cpu.NewThread(cpu.ThreadConfig{
		Name: "writer", Engine: eng, Memory: node, Stream: writeStream,
		WindowLocal: p.LocalOutstanding, WindowRemote: p.RemoteOutstanding,
	})
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	wt.Start(0)
	sys.Run()
	if !wt.Done {
		return 0, metrics.Snapshot{}, fmt.Errorf("experiments: write phase did not finish")
	}

	// Flush: dirty remote lines go home; after this, caching remote data
	// read-only is safe on any number of cores.
	node.FlushCaches(sys.Now())

	// Read-only phase: `threads` cores, random reads over the buffer.
	start := sys.Now()
	var threadsDone []*cpu.Thread
	for t := 0; t < threads; t++ {
		stream, err := randomReadStream(o.Seed+int64(t)*31, rng, totalReads/threads)
		if err != nil {
			return 0, metrics.Snapshot{}, err
		}
		th, err := cpu.NewThread(cpu.ThreadConfig{
			Name: fmt.Sprintf("reader%d", t), Engine: eng, Memory: node, Stream: stream,
			Core: t * (p.CoresPerNode / maxInt(threads, 1)), WindowLocal: p.LocalOutstanding, WindowRemote: p.RemoteOutstanding,
		})
		if err != nil {
			return 0, metrics.Snapshot{}, err
		}
		th.Start(start)
		threadsDone = append(threadsDone, th)
	}
	sys.Run()
	var end sim.Time
	for _, th := range threadsDone {
		if !th.Done {
			return 0, metrics.Snapshot{}, fmt.Errorf("experiments: reader did not finish")
		}
		if th.FinishTime > end {
			end = th.FinishTime
		}
	}
	return end - start, sys.Registry().Snapshot(), nil
}

func randomReadStream(seed int64, rng addr.Range, count int) (cpu.Stream, error) {
	return workloads.RandomStream(seed, []addr.Range{rng}, count, 0)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
