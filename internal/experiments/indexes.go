package experiments

import (
	"math/rand"

	"repro/internal/db"
	"repro/internal/memmodel"
	"repro/internal/params"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/swap"
)

// AblationIndexes quantifies the paper's footnote 3: in-memory databases
// use hash indexes because, held in (remote) memory, a lookup costs a
// couple of constant-latency probes instead of a logarithmic B-tree
// walk. Under remote swap the two converge — the B-tree's upper levels
// stay resident and linear probing stays on one page, so both pay about
// one fault per lookup — and only the B-tree can answer range queries.
// By evaluating B-trees, the paper deliberately understated its own
// system's advantage; this ablation states it.
func AblationIndexes(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("ablationG", "Index structure: B-tree vs hash (paper footnote 3)",
		"configuration", "time per lookup (µs)")
	btSeries := fig.AddSeries("b-tree (fanout 168)")
	hSeries := fig.AddSeries("hash index")

	nKeys := o.scaled(10_000_000, 20_000)
	searches := o.scaled(500_000, 1_000)
	resident := btreeResidency(o)

	tr, _, err := buildTree(o, 168, nKeys)
	if err != nil {
		return nil, err
	}

	type config struct {
		label string
		x     float64
		mk    func() (memmodel.Accessor, error)
	}
	configs := []config{
		{"local memory", 0, func() (memmodel.Accessor, error) { return memmodel.Local{P: o.P}, nil }},
		{"remote memory", 1, func() (memmodel.Accessor, error) { return memmodel.Remote{P: o.P, Hops: 1}, nil }},
		{"remote swap", 2, func() (memmodel.Accessor, error) {
			return memmodel.NewSwap(o.P, swap.RemoteDevice{P: o.P, Hops: 1}, resident)
		}},
	}
	keySpace := int64(nKeys) * 4
	// The tree is read-only under Search and safe to share; HashIndex
	// mutates its probe counters on every lookup, so each task populates
	// its own and the counters are summed after the merge. The sum over
	// the three identical sweeps equals the serial accumulation, so the
	// MeanProbes note matches the old harness exactly.
	type idxPoint struct {
		bt, h           float64
		probes, lookups uint64
	}
	points, err := runner.Map(o.Parallel, len(configs), func(i int) (idxPoint, error) {
		cfg := configs[i]
		accB, err := cfg.mk()
		if err != nil {
			return idxPoint{}, err
		}
		var pt idxPoint
		pt.bt = float64(searchSweep(o, tr, keySpace, searches, accB)) / float64(params.Microsecond)

		h, err := db.NewHashIndex(nKeys)
		if err != nil {
			return idxPoint{}, err
		}
		tr.Walk(func(k uint64) { h.Insert(k, k) })
		accH, err := cfg.mk()
		if err != nil {
			return idxPoint{}, err
		}
		pt.h = float64(hashSweep(o, h, keySpace, searches, accH)) / float64(params.Microsecond)
		pt.probes, pt.lookups = h.Probes, h.Lookups
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	var sumProbes, sumLookups uint64
	for i, cfg := range configs {
		btSeries.AddLabeled(cfg.label, cfg.x, points[i].bt)
		hSeries.AddLabeled(cfg.label, cfg.x, points[i].h)
		sumProbes += points[i].probes
		sumLookups += points[i].lookups
	}
	fig.Note("in remote memory the hash index wins by ~10x (footnote 3); under swap the structures converge near one fault per lookup")
	meanProbes := 0.0
	if sumLookups > 0 {
		meanProbes = float64(sumProbes) / float64(sumLookups)
	}
	fig.Note("mean hash probes per lookup: %.2f", meanProbes)
	return fig, nil
}

// hashSweep mirrors searchSweep for the hash index: upfront key draw,
// batched probe pricing. It stays serial even for stateless accessors —
// HashIndex mutates its probe counters on every lookup.
func hashSweep(o Options, h *db.HashIndex, keySpace int64, searches int, acc memmodel.Accessor) params.Duration {
	rng := rand.New(rand.NewSource(o.Seed + 1))
	var b memmodel.Batcher
	var total params.Duration
	for i := 0; i < searches; i++ {
		_, _, cost, _ := h.SearchBatch(uint64(rng.Int63n(keySpace)), acc, &b)
		total += cost
	}
	return params.Duration(float64(total) / float64(searches))
}
