package experiments

import "testing"

// TestParallelDeterminism is the harness's core contract: every
// generator renders byte-identical output whether its sweep points run
// serially or concurrently, because each point is an independent
// single-threaded simulation and results merge in submission order.
func TestParallelDeterminism(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			o := DefaultOptions()
			o.Scale = 0.005

			o.Parallel = 1
			serial, err := e.Gen(o)
			if err != nil {
				t.Fatalf("Parallel=1: %v", err)
			}
			o.Parallel = 8
			conc, err := e.Gen(o)
			if err != nil {
				t.Fatalf("Parallel=8: %v", err)
			}
			if got, want := conc.Render(), serial.Render(); got != want {
				t.Errorf("rendered output differs between Parallel=8 and Parallel=1:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
			}
		})
	}
}
