package experiments

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mesh"
	"repro/internal/params"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Scale is the sharded-engine stress workload: every node in the mesh
// runs client threads against the memory of its point reflection
// through the mesh center, so traffic crosses the whole fabric and
// every shard of a partitioned run carries both client and server work.
// It exists to exercise 1000+-node fabrics (-mesh 32x32) and to measure
// the parallel engine (-shards K): the rendered figure and merged
// metrics are byte-identical at every shard count, while wall-clock
// drops with K. The x-axis sweeps threads per node; y is simulated
// completion time, which grows with per-node injection rate.
func Scale(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("scale", "Whole-fabric load (every node a client)",
		"threads per node", "completion time (ms)")
	elapsed := fig.AddSeries("completion time (ms)")
	lat := fig.AddSeries("mean access latency (µs)")

	perThread := o.scaled(2000, 40)
	threadCounts := []int{1, 2}

	pts, err := runner.Map(o.Parallel, len(threadCounts), func(i int) ([2]timedPoint, error) {
		return scalePoint(o, threadCounts[i], perThread)
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range pts {
		o.addMetrics(pt[0].snap)
		elapsed.AddLabeled(fmt.Sprintf("%dt", threadCounts[i]), float64(threadCounts[i]), pt[0].v)
		lat.AddLabeled(fmt.Sprintf("%dt", threadCounts[i]), float64(threadCounts[i]), pt[1].v)
	}
	fig.Note("all %d nodes issue %d random loads per thread against their diametric partner",
		o.P.MeshWidth*o.P.MeshHeight, perThread)
	return fig, nil
}

// scalePoint simulates one whole-fabric load point and returns
// (completion ms, mean latency µs) with the run's metrics snapshot on
// the first.
func scalePoint(o Options, threadsPer, perThread int) ([2]timedPoint, error) {
	var z [2]timedPoint
	sys, err := core.NewSystem(o.P)
	if err != nil {
		return z, err
	}
	topo, err := mesh.NewTopology(o.P.MeshWidth, o.P.MeshHeight)
	if err != nil {
		return z, err
	}
	var threads []*cpu.Thread
	for id := 1; id <= topo.Nodes(); id++ {
		client := addr.NodeID(id)
		x, y := topo.Coord(client)
		partner := topo.NodeAt(topo.W-1-x, topo.H-1-y)
		if partner == client {
			continue // odd-sized mesh center reflects onto itself
		}
		region, err := sys.Region(client)
		if err != nil {
			return z, err
		}
		rng, err := region.GrowFrom(partner, 8<<20)
		if err != nil {
			return z, err
		}
		node, err := sys.Cluster().Node(client)
		if err != nil {
			return z, err
		}
		for t := 0; t < threadsPer; t++ {
			stream, err := workloads.RandomStream(o.Seed+int64(id)*104729+int64(t)*7919,
				[]addr.Range{rng}, perThread, 0)
			if err != nil {
				return z, err
			}
			th, err := cpu.NewThread(cpu.ThreadConfig{
				Name:         fmt.Sprintf("n%d/t%d", client, t),
				Engine:       node.Engine(),
				Memory:       node,
				Stream:       stream,
				Core:         t % o.P.CoresPerNode,
				WindowLocal:  o.P.LocalOutstanding,
				WindowRemote: o.P.RemoteOutstanding,
			})
			if err != nil {
				return z, err
			}
			th.Start(0)
			threads = append(threads, th)
		}
	}
	sys.Run()
	res, err := collect(threads)
	if err != nil {
		return z, err
	}
	res.Metrics = sys.Registry().Snapshot()
	return [2]timedPoint{
		{float64(res.Elapsed) / float64(params.Millisecond), res.Metrics},
		{v: res.MeanLatency / float64(params.Microsecond)},
	}, nil
}
