package experiments

import (
	"repro/internal/addr"
	"repro/internal/anmodel"
	"repro/internal/cohdsm"
	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func anInputs(o Options, total uint64, perPage float64) anmodel.Inputs {
	in := anmodel.FromParams(o.P, 1)
	in.ATotal = total
	in.APage = perPage
	return in
}

// Fig11 runs the PARSEC-class suite under the three configurations of
// the paper's final experiment: all-local memory (the 128 GB mainframe
// stand-in), the prototype's remote memory, and remote swap. Kernel
// footprints are scaled multiples of the swap configuration's local
// memory, preserving each benchmark's footprint class.
func Fig11(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("fig11", "PARSEC-class benchmarks under three memory configurations",
		"benchmark", "execution time (ms)")

	p := o.P
	// Scale the kernels via the residency knob so Scale shrinks both the
	// footprints and the local budget coherently.
	p.SwapResidentPages = btreeResidency(o)
	suite := workloads.ParsecSuite(p)

	configs := []memmodel.Config{memmodel.ConfigLocal, memmodel.ConfigRemote, memmodel.ConfigRemoteSwap}
	series := make(map[memmodel.Config]*stats.Series, len(configs))
	for _, cfg := range configs {
		series[cfg] = fig.AddSeries(cfg.String())
	}
	// One task per (kernel, config) pair; Kernel is a pure value and each
	// task builds its own accessor stack, so tasks share nothing.
	times, err := runner.Map(o.Parallel, len(suite)*len(configs), func(i int) (float64, error) {
		k := suite[i/len(configs)]
		cfg := configs[i%len(configs)]
		base, err := memmodel.Build(cfg, p, 1, p.SwapResidentPages)
		if err != nil {
			return 0, err
		}
		acc, err := memmodel.NewLineCached(base, p, memmodel.DefaultCacheLines)
		if err != nil {
			return 0, err
		}
		res := k.Run(acc, o.Seed)
		return float64(res.Total()) / float64(params.Millisecond), nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range suite {
		for c, cfg := range configs {
			series[cfg].AddLabeled(k.Name, float64(i), times[i*len(configs)+c])
		}
	}
	fig.Note("expected: blackscholes/raytrace swap ~2x the prototype; canneal swap prohibitive, prototype slower than local but feasible; streamcluster all equal")
	return fig, nil
}

// AblationCoherency is the motivation experiment the paper argues from:
// what inter-node coherency would cost. On the coherent-DSM baseline
// (the 3Leaf/ScaleMP approach), the cost of writing a line grows with
// the number of nodes that have read it, because every one of their
// caches must be invalidated. Under the RMC architecture the same write
// costs the flat remote round trip no matter how many nodes contribute
// memory, because no cache outside the writer's node ever holds the
// line — coherency domains never span nodes.
func AblationCoherency(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("ablationA", "Coherency overhead vs nodes sharing the data",
		"nodes that read the line before the write", "write latency (µs)")
	coh := fig.AddSeries("coherent DSM (directory MSI)")
	rmcFlat := fig.AddSeries("non-coherent RMC region")

	accesses := o.scaled(40000, 800)
	const lines = 256
	sharerCounts := []int{1, 2, 4, 8, 12, 15}
	type sharerPoint struct {
		coh, rmc float64
		snap     metrics.Snapshot
	}
	points, err := runner.Map(o.Parallel, len(sharerCounts), func(i int) (sharerPoint, error) {
		sharers := sharerCounts[i]
		m, err := cohdsm.New(o.P, 16)
		if err != nil {
			return sharerPoint{}, err
		}
		// For each line: `sharers` distinct nodes read it, then node 15
		// (never among the readers) writes it. Average the write cost.
		var writeTotal params.Duration
		for l := uint64(0); l < lines; l++ {
			for s := 0; s < sharers; s++ {
				if _, err := m.Access(s, l, false); err != nil {
					return sharerPoint{}, err
				}
			}
			lat, err := m.Access(15, l, true)
			if err != nil {
				return sharerPoint{}, err
			}
			writeTotal += lat
		}
		if err := m.CheckInvariants(); err != nil {
			return sharerPoint{}, err
		}
		pt := sharerPoint{coh: float64(writeTotal) / float64(lines) / float64(params.Microsecond)}

		// RMC side: one node aggregates memory from the same number of
		// donors and writes it with no coherency traffic at all —
		// measured on the micro layer so congestion effects are not
		// assumed away.
		rmcLat, snap, err := rmcAggregateLatency(o, sharers+1, accesses)
		if err != nil {
			return sharerPoint{}, err
		}
		pt.rmc = rmcLat / float64(params.Microsecond)
		pt.snap = snap
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	for i, sharers := range sharerCounts {
		o.addMetrics(points[i].snap)
		coh.Add(float64(sharers), points[i].coh)
		rmcFlat.Add(float64(sharers), points[i].rmc)
	}
	fig.Note("coherent-DSM write cost grows with the sharer count; the RMC write cost is the flat remote round trip")
	return fig, nil
}

// rmcAggregateLatency measures mean access latency when node 1 spreads
// its working set over memory borrowed from n-1 donors. The run's
// metrics snapshot rides along for the caller to fold.
func rmcAggregateLatency(o Options, nodes, accesses int) (float64, metrics.Snapshot, error) {
	sys, err := core.NewSystem(o.P)
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	var donors []addr.NodeID
	for id := addr.NodeID(2); int(id) <= nodes; id++ {
		donors = append(donors, id)
	}
	if len(donors) == 0 {
		donors = []addr.NodeID{2}
	}
	mr := microRun{Client: 1, Servers: donors, Threads: 1, AccessesPerThread: accesses, WriteFrac: 0.25}
	threads, err := mr.launch(sys, o.Seed)
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	sys.Run()
	res, err := collect(threads)
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	return res.MeanLatency, sys.Registry().Snapshot(), nil
}
