package experiments

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

// runMerged regenerates one experiment with a metrics accumulator and
// returns the merged snapshot.
func runMerged(t *testing.T, id string, parallel int) metrics.Snapshot {
	t.Helper()
	gen, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Scale = 0.005
	o.Parallel = parallel
	var merged metrics.Merged
	o.Metrics = &merged
	if _, err := gen(o); err != nil {
		t.Fatalf("%s at Parallel=%d: %v", id, parallel, err)
	}
	return merged.Snapshot()
}

// TestMetricsDeterminism extends the harness contract to the metrics
// layer: the merged snapshot renders byte-identical Prometheus text at
// every worker count, because each sweep point snapshots its own
// registry and generators fold snapshots in submission order.
func TestMetricsDeterminism(t *testing.T) {
	for _, id := range []string{"table1", "fig7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := runMerged(t, id, 1).Prometheus()
			conc := runMerged(t, id, 8).Prometheus()
			if serial != conc {
				t.Errorf("Prometheus text differs between Parallel=8 and Parallel=1:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, conc)
			}
			if serial == "" {
				t.Fatal("empty Prometheus rendering")
			}
		})
	}
}

// TestMetricsCoverage checks the merged snapshot of a contended run
// touches every instrumented substrate.
func TestMetricsCoverage(t *testing.T) {
	snap := runMerged(t, "fig7", 0)
	for _, fam := range []string{
		metrics.FamRMCRequests,
		metrics.FamRMCLatency,
		metrics.FamHNCFrames,
		metrics.FamMeshDelivered,
		metrics.FamMeshLinkFrames,
		metrics.FamCacheAccesses,
		metrics.FamDRAMReads,
		metrics.FamSimEvents,
		metrics.FamNodeRemoteOps,
	} {
		if snap.Total(fam) == 0 {
			t.Errorf("family %s is zero after fig7", fam)
		}
	}
	if snap.Total(metrics.FamHNCCRCFailures) != 0 {
		t.Error("CRC failures on a healthy fabric")
	}
	text := snap.Prometheus()
	for _, fam := range []string{"ncdsm_rmc_", "ncdsm_mesh_", "ncdsm_cache_", "ncdsm_dram_"} {
		if !strings.Contains(text, fam) {
			t.Errorf("Prometheus text missing %s* families", fam)
		}
	}
}
