// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) plus the ablations DESIGN.md calls out. Each
// generator returns a stats.Figure whose rendered rows/series mirror
// what the paper reports; cmd/ncdsm-bench prints them and bench_test.go
// wraps them as Go benchmarks.
//
// Figures 6–8 and the RMC-side ablations run on the micro layer (the
// discrete-event cluster), where contention is the result. Figures 9–11
// and the equation checks run on the macro layer (memmodel accessors),
// where workload scale is the result. Options.Scale shrinks workload
// sizes proportionally so the full set can run in seconds during tests
// and at full size from the harness.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Options configures a run.
type Options struct {
	// P is the system calibration.
	P params.Params
	// Scale multiplies workload sizes (access counts, key counts).
	// 1.0 reproduces the paper-sized runs; tests use much less.
	Scale float64
	// Seed makes runs deterministic and lets tests vary inputs.
	Seed int64
	// Parallel bounds how many sweep points a generator simulates
	// concurrently: 0 (the default) means all cores, 1 reproduces the
	// old serial harness. Each sweep point is an independent
	// single-threaded simulation (fresh engine, system, accessors,
	// RNGs), and results are merged in submission order, so the
	// rendered figures are identical at every setting — Parallel only
	// changes wall-clock time.
	Parallel int
	// Metrics, when non-nil, accumulates every simulated run's metrics
	// snapshot. Generators fold snapshots on their own goroutine in
	// sweep submission order, so the merged snapshot is byte-identical
	// at every Parallel setting — the same contract the figures obey.
	Metrics *metrics.Merged
}

// addMetrics folds one run's snapshot into the accumulator, if any. Must
// be called from the generator goroutine in submission order.
func (o Options) addMetrics(s metrics.Snapshot) {
	if o.Metrics != nil {
		o.Metrics.Add(s)
	}
}

// DefaultOptions returns the paper-scale configuration.
func DefaultOptions() Options {
	return Options{P: params.Default(), Scale: 1.0, Seed: 1}
}

// scaled applies Scale to a base count with a floor.
func (o Options) scaled(base, floor int) int {
	n := int(float64(base) * o.Scale)
	if n < floor {
		n = floor
	}
	return n
}

// Generator produces one figure.
type Generator func(Options) (*stats.Figure, error)

// Registry maps experiment identifiers (the paper's figure numbers plus
// our ablation letters) to generators, in presentation order.
func Registry() []struct {
	ID  string
	Gen Generator
} {
	return []struct {
		ID  string
		Gen Generator
	}{
		{"table1", Table1},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"eq", Equations},
		{"A", AblationCoherency},
		{"B", AblationWindow},
		{"C", AblationRetry},
		{"D", AblationPrefetch},
		{"E", AblationParallelPhase},
		{"F", AblationFabric},
		{"G", AblationIndexes},
		{"H", ConsistencyCost},
		{"I", BulkScan},
		{"scale", Scale},
	}
}

// Lookup finds a generator by identifier.
func Lookup(id string) (Generator, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Gen, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// ---- shared micro-layer driver ----

// microRun is one random-access experiment on the event-driven cluster.
type microRun struct {
	// Client is the node issuing the accesses.
	Client addr.NodeID
	// Servers donate the memory the client reserves (round-robin).
	Servers []addr.NodeID
	// Threads on the client, each performing AccessesPerThread loads.
	Threads           int
	AccessesPerThread int
	// WriteFrac selects stores; the paper's microbenchmark uses loads.
	WriteFrac float64
	// Express routes this client's traffic over an express link (the
	// Figure 8 control thread); the link must exist.
	Express bool
	// BytesPerServer sizes each reservation.
	BytesPerServer uint64
	// OnThreadDone, if set, fires when each of this run's threads
	// finishes (Figure 8 stops the world when the control thread does).
	OnThreadDone func(*cpu.Thread, sim.Time)
}

// microResult reports a finished run.
type microResult struct {
	Elapsed     sim.Time
	MeanLatency float64 // picoseconds per access
	Threads     []*cpu.Thread
	// Metrics is the run's registry snapshot, captured on the goroutine
	// that ran the simulation so lazily-sampled instruments read their
	// final values.
	Metrics metrics.Snapshot
}

// launch prepares the run on an existing system and returns the threads
// (started). The caller runs the engine and collects.
func (mr microRun) launch(sys *core.System, seed int64) ([]*cpu.Thread, error) {
	if mr.BytesPerServer == 0 {
		mr.BytesPerServer = 64 << 20
	}
	region, err := sys.Region(mr.Client)
	if err != nil {
		return nil, err
	}
	var ranges []addr.Range
	for _, s := range mr.Servers {
		r, err := region.GrowFrom(s, mr.BytesPerServer)
		if err != nil {
			return nil, err
		}
		ranges = append(ranges, r)
	}
	node, err := sys.Cluster().Node(mr.Client)
	if err != nil {
		return nil, err
	}
	p := sys.Params()
	threads := make([]*cpu.Thread, mr.Threads)
	for t := 0; t < mr.Threads; t++ {
		stream, err := workloads.RandomStream(seed+int64(t)*7919, ranges, mr.AccessesPerThread, mr.WriteFrac)
		if err != nil {
			return nil, err
		}
		th, err := cpu.NewThread(cpu.ThreadConfig{
			Name:         fmt.Sprintf("n%d/t%d", mr.Client, t),
			Engine:       node.Engine(),
			Memory:       node,
			Stream:       stream,
			Core:         t % p.CoresPerNode,
			WindowLocal:  p.LocalOutstanding,
			WindowRemote: p.RemoteOutstanding,
			Express:      mr.Express,
			OnDone:       mr.OnThreadDone,
		})
		if err != nil {
			return nil, err
		}
		th.Start(0)
		threads[t] = th
	}
	return threads, nil
}

// run executes the microbenchmark on a fresh system and waits for all
// client threads.
func (mr microRun) run(o Options) (microResult, error) {
	sys, err := core.NewSystem(o.P)
	if err != nil {
		return microResult{}, err
	}
	threads, err := mr.launch(sys, o.Seed)
	if err != nil {
		return microResult{}, err
	}
	sys.Run()
	res, err := collect(threads)
	res.Metrics = sys.Registry().Snapshot()
	return res, err
}

func collect(threads []*cpu.Thread) (microResult, error) {
	res := microResult{Threads: threads}
	var latSum float64
	var latN uint64
	for _, th := range threads {
		if !th.Done {
			return res, fmt.Errorf("experiments: thread %s did not finish", th.Name)
		}
		if th.FinishTime > res.Elapsed {
			res.Elapsed = th.FinishTime
		}
		latSum += th.Latency.Mean() * float64(th.Latency.N())
		latN += th.Latency.N()
	}
	if latN > 0 {
		res.MeanLatency = latSum / float64(latN)
	}
	return res, nil
}

// serversAt picks n distinct server nodes exactly h hops from the
// client, preferring low identifiers for determinism. Pure geometry — no
// system is built.
func serversAt(o Options, client addr.NodeID, h, n int) ([]addr.NodeID, error) {
	topo, err := mesh.NewTopology(o.P.MeshWidth, o.P.MeshHeight)
	if err != nil {
		return nil, err
	}
	cands := topo.AtDistance(client, h)
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	if len(cands) < n {
		return nil, fmt.Errorf("experiments: only %d nodes at distance %d from node %d, need %d", len(cands), h, client, n)
	}
	return cands[:n], nil
}

// cpuAccess wraps a physical address as a read access.
func cpuAccess(a addr.Phys) cpu.Access { return cpu.Access{Addr: a} }

// usPerOp converts (elapsed picoseconds, ops) to microseconds per op.
func usPerOp(elapsed sim.Time, ops int) float64 {
	if ops == 0 {
		return 0
	}
	return float64(elapsed) / float64(ops) / float64(params.Microsecond)
}
