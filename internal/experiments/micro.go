package experiments

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// timedPoint is one sweep point's scalar plus the run's metrics
// snapshot, carried back so the generator can fold snapshots in
// submission order.
type timedPoint struct {
	v    float64
	snap metrics.Snapshot
}

// fig7Client sits at (1,1) of the mesh — node 6 on the calibrated 4×4
// — so it has neighbors at one, two, and three hops in all the
// multiplicities Figure 7 needs, at any mesh size.
func fig7Client(o Options) addr.NodeID { return addr.NodeID(o.P.MeshWidth + 2) }

// Table1 characterizes the prototype: the configuration constants and
// the measured unloaded access latencies that anchor every other
// experiment (the paper reports these in Section IV/V prose; we render
// them as Table I).
func Table1(o Options) (*stats.Figure, error) {
	p := o.P
	fig := stats.NewFigure("table1", "Prototype configuration and latency characterization",
		"quantity", "value (µs where applicable)")

	conf := fig.AddSeries("configured")
	conf.AddLabeled("nodes", 1, float64(p.Nodes()))
	conf.AddLabeled("cores/node", 2, float64(p.CoresPerNode))
	conf.AddLabeled("memory/node (GB)", 3, float64(p.MemPerNode>>30))
	conf.AddLabeled("pooled/node (GB)", 4, float64(p.PooledMemPerNode()>>30))
	conf.AddLabeled("shared pool (GB)", 5, float64(p.PoolSize()>>30))
	conf.AddLabeled("outstanding local", 6, float64(p.LocalOutstanding))
	conf.AddLabeled("outstanding remote (RMC)", 7, float64(p.RemoteOutstanding))

	meas := fig.AddSeries("measured")
	accesses := o.scaled(20000, 200)

	// Local latency: a thread streaming distinct local lines.
	sys, err := core.NewSystem(p)
	if err != nil {
		return nil, err
	}
	localLat, err := measureLocal(sys, accesses)
	if err != nil {
		return nil, err
	}
	o.addMetrics(sys.Registry().Snapshot())
	meas.AddLabeled("local access (µs)", 10, localLat/float64(params.Microsecond))

	// Remote latency at 1 and 6 hops, single thread, unloaded. The p99
	// shows the unloaded path has no latency tail — every access takes
	// the same hardware trip, unlike a faulting or OS-mediated path.
	hops := []int{1, 6}
	type hopPoint struct {
		mean, p99 float64
		snap      metrics.Snapshot
	}
	points, err := runner.Map(o.Parallel, len(hops), func(i int) (hopPoint, error) {
		servers, err := serversAt(o, 1, hops[i], 1)
		if err != nil {
			return hopPoint{}, err
		}
		res, err := (microRun{Client: 1, Servers: servers, Threads: 1, AccessesPerThread: accesses}).run(o)
		if err != nil {
			return hopPoint{}, err
		}
		return hopPoint{
			mean: res.MeanLatency / float64(params.Microsecond),
			p99:  res.Threads[0].Latency.Quantile(0.99) / float64(params.Microsecond),
			snap: res.Metrics,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, pt := range points {
		o.addMetrics(pt.snap)
	}
	for i, h := range hops {
		meas.AddLabeled(fmt.Sprintf("remote access, %d hop(s) (µs)", h), float64(11+2*i), points[i].mean)
		meas.AddLabeled(fmt.Sprintf("remote access p99, %d hop(s) (µs)", h), float64(12+2*i), points[i].p99)
	}
	fig.Note("remote/local latency ratio anchors Figures 9-11; analytic 1-hop round trip = %.2f µs",
		float64(p.RemoteRoundTrip(1))/float64(params.Microsecond))
	return fig, nil
}

func measureLocal(sys *core.System, accesses int) (float64, error) {
	node, err := sys.Cluster().Node(1)
	if err != nil {
		return 0, err
	}
	var total sim.Time
	now := sim.Time(0)
	for i := 0; i < accesses; i++ {
		a := addr.Phys(uint64(i) * 4096) // distinct pages: always misses
		start := now
		var done sim.Time
		node.Issue(now, 0, cpuAccess(a), false, func(ts sim.Time) { done = ts })
		sys.Run()
		total += done - start
		now = done
		// Scheduled fault windows (node stalls) are engine events too;
		// never issue behind a clock they have already advanced.
		if t := sys.Now(); t > now {
			now = t
		}
	}
	return float64(total) / float64(accesses), nil
}

// Fig6 measures remote access latency versus distance: the random
// benchmark with one thread against a single memory server placed 1–6
// hops away. Latency grows linearly with the hop count; the local
// latency series shows the gap the RMC pays for crossing the fabric.
func Fig6(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("fig6", "Remote access latency vs distance",
		"hops to memory server", "latency per access (µs)")
	remote := fig.AddSeries("remote memory (measured)")
	analytic := fig.AddSeries("unloaded round trip (analytic)")
	local := fig.AddSeries("local memory")

	accesses := o.scaled(20000, 200)
	const maxHops = 6
	means, err := runner.Map(o.Parallel, maxHops, func(i int) (timedPoint, error) {
		servers, err := serversAt(o, 1, i+1, 1)
		if err != nil {
			return timedPoint{}, err
		}
		res, err := (microRun{Client: 1, Servers: servers, Threads: 1, AccessesPerThread: accesses}).run(o)
		if err != nil {
			return timedPoint{}, err
		}
		return timedPoint{res.MeanLatency / float64(params.Microsecond), res.Metrics}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, m := range means {
		o.addMetrics(m.snap)
		h := i + 1
		remote.Add(float64(h), m.v)
		analytic.Add(float64(h), float64(o.P.RemoteRoundTrip(h))/float64(params.Microsecond))
		local.Add(float64(h), float64(o.P.DRAMLatency+o.P.DRAMOccupancy+o.P.L1Latency)/float64(params.Microsecond))
	}
	fig.Note("latency grows ~%.2f µs per hop (two link traversals per access)",
		2*float64(o.P.HopLatency)/float64(params.Microsecond))
	return fig, nil
}

// Fig7 reproduces the client-bottleneck study: execution time of a fixed
// number of random loads split over 1/2/4 threads against one server,
// then 4 threads against four servers at one, two, and three hops. The
// expected shape: 2 threads halve the time, 4 don't (client-RMC
// saturation); replicating the server doesn't help; and at 4 threads,
// moving the servers *farther* slightly *reduces* time because the
// longer round trip lowers the arrival rate at the client RMC's tiny
// queue and fewer NACK retries waste its capacity.
func Fig7(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("fig7", "Client-RMC bottleneck (random benchmark)",
		"configuration", "execution time (ms)")
	one := fig.AddSeries("1 server")
	four := fig.AddSeries("4 servers")

	total := o.scaled(60000, 1200) // total accesses, split across threads

	// All six configurations are independent simulations: the thread
	// sweep against one server, then the distance sweep at 4 threads.
	specs := []struct{ threads, hops, servers int }{
		{1, 1, 1}, {2, 1, 1}, {4, 1, 1},
		{4, 1, 4}, {4, 2, 4}, {4, 3, 4},
	}
	times, err := runner.Map(o.Parallel, len(specs), func(i int) (timedPoint, error) {
		s := specs[i]
		servers, err := serversAt(o, fig7Client(o), s.hops, s.servers)
		if err != nil {
			return timedPoint{}, err
		}
		res, err := (microRun{
			Client: fig7Client(o), Servers: servers,
			Threads: s.threads, AccessesPerThread: total / s.threads,
		}).run(o)
		if err != nil {
			return timedPoint{}, err
		}
		return timedPoint{float64(res.Elapsed) / float64(params.Millisecond), res.Metrics}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, pt := range times {
		o.addMetrics(pt.snap)
	}
	for i, s := range specs[:3] {
		one.AddLabeled(fmt.Sprintf("%dt, 1 hop", s.threads), float64(i), times[i].v)
	}
	for j, s := range specs[3:] {
		four.AddLabeled(fmt.Sprintf("4t, %d hop", s.hops), float64(3+j), times[3+j].v)
	}
	fig.Note("expected: 1t→2t halves time; 2t→4t does not; 4 servers no better; farther servers slightly faster at 4t")
	return fig, nil
}

// fig8Setup describes one x-axis point of Figure 8.
type fig8Setup struct {
	Nodes, ThreadsPer int
}

// Fig8 reproduces the server-congestion study: a control thread on a
// node connected to the memory server by a private (express) link runs a
// fixed random workload while an increasing number of other client nodes
// stress the same server over the mesh. The control time stays flat up
// to about three stressing nodes, then rises — server-RMC congestion,
// not network congestion, because the control traffic never shares mesh
// links with the stressors.
func Fig8(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("fig8", "Server-RMC congestion (control thread on private link)",
		"stressing load", "control-thread time (ms)")
	ctrl := fig.AddSeries("control thread")

	controlAccesses := o.scaled(20000, 400)
	setups := []fig8Setup{{0, 0}, {1, 1}, {1, 2}, {1, 4}, {2, 4}, {3, 4}, {4, 4}, {5, 4}, {6, 4}}
	times, err := runner.Map(o.Parallel, len(setups), func(i int) (timedPoint, error) {
		return fig8Point(o, setups[i], controlAccesses)
	})
	if err != nil {
		return nil, err
	}
	for _, pt := range times {
		o.addMetrics(pt.snap)
	}
	for i, s := range setups {
		label := "no stressors"
		if s.Nodes > 0 {
			label = fmt.Sprintf("%dn x %dt", s.Nodes, s.ThreadsPer)
		}
		ctrl.AddLabeled(label, float64(i), times[i].v)
	}
	fig.Note("expected: flat through ~3 nodes x 4 threads, then rising as the server RMC saturates")
	return fig, nil
}

// fig8Point simulates one load point: the control thread plus s.Nodes
// stressing clients on a fresh cluster, returning the control time (ms)
// and the run's metrics snapshot.
func fig8Point(o Options, s fig8Setup, controlAccesses int) (timedPoint, error) {
	const (
		server  = addr.NodeID(6)  // (1,1)
		control = addr.NodeID(16) // (3,3), reaches the server by express link only
	)
	stressors := []addr.NodeID{1, 2, 3, 4, 5, 7, 9, 10, 11, 13}

	sys, err := core.NewSystem(o.P)
	if err != nil {
		return timedPoint{}, err
	}
	meshFab, err := sys.Cluster().MeshFabric()
	if err != nil {
		return timedPoint{}, err
	}
	if err := meshFab.AddExpressLink(control, server); err != nil {
		return timedPoint{}, err
	}
	// Control thread: express-routed loads against the server. The run
	// ends (at the next window barrier, deterministically) the moment it
	// finishes; the stressors exist only to load the server while it
	// runs.
	ctrlRun := microRun{
		Client: control, Servers: []addr.NodeID{server},
		Threads: 1, AccessesPerThread: controlAccesses, Express: true,
		OnThreadDone: func(*cpu.Thread, sim.Time) { sys.Stop() },
	}
	ctrlThreads, err := ctrlRun.launch(sys, o.Seed)
	if err != nil {
		return timedPoint{}, err
	}
	// Stressing clients: effectively endless streams against the same
	// server over the mesh; the run ends when the control finishes.
	for n := 0; n < s.Nodes; n++ {
		stress := microRun{
			Client: stressors[n], Servers: []addr.NodeID{server},
			Threads: s.ThreadsPer, AccessesPerThread: controlAccesses * 50,
		}
		if _, err := stress.launch(sys, o.Seed+int64(100*(n+1))); err != nil {
			return timedPoint{}, err
		}
	}
	for !ctrlThreads[0].Done {
		if sys.Set().Pending() == 0 {
			return timedPoint{}, fmt.Errorf("experiments: fig8 run stalled")
		}
		sys.Run()
	}
	return timedPoint{
		v:    float64(ctrlThreads[0].FinishTime) / float64(params.Millisecond),
		snap: sys.Registry().Snapshot(),
	}, nil
}

// AblationWindow sweeps the per-core outstanding-request limit against
// the RMC range — the prototype's HT-I/O-unit restriction (1) versus the
// paper's future-work goal of a real memory controller (up to the local
// window of 8).
func AblationWindow(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("ablationB", "Outstanding-request window (RMC as I/O unit vs memory controller)",
		"outstanding remote requests per core", "execution time (ms)")
	s := fig.AddSeries("1 thread, 1 server, 1 hop")
	accesses := o.scaled(40000, 800)
	windows := []int{1, 2, 4, 8}
	times, err := runner.Map(o.Parallel, len(windows), func(i int) (timedPoint, error) {
		w := windows[i]
		p := o.P
		p.RemoteOutstanding = w
		// A real memory-controller RMC (the paper's future work) would
		// size its admission queue for the node's outstanding requests;
		// widening the window without the queue only multiplies NACKs.
		if p.RMCQueueDepth < w {
			p.RMCQueueDepth = w
		}
		ow := o
		ow.P = p
		servers, err := serversAt(ow, 1, 1, 1)
		if err != nil {
			return timedPoint{}, err
		}
		res, err := (microRun{Client: 1, Servers: servers, Threads: 1, AccessesPerThread: accesses}).run(ow)
		if err != nil {
			return timedPoint{}, err
		}
		return timedPoint{float64(res.Elapsed) / float64(params.Millisecond), res.Metrics}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, w := range windows {
		o.addMetrics(times[i].snap)
		s.Add(float64(w), times[i].v)
	}
	fig.Note("window 1 is the prototype; widening overlaps round trips until the client RMC occupancy binds")
	return fig, nil
}

// AblationRetry probes the mechanism behind Figure 7's inversion: with
// the prototype's tiny admission queue, 4 threads at 1 hop waste client-
// RMC capacity on NACK retries, so 3 hops can be faster; deepening the
// queue removes the inversion.
func AblationRetry(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("ablationC", "Client-RMC admission queue vs the Fig. 7 inversion",
		"RMC queue depth", "execution time, 4 threads (ms)")
	near := fig.AddSeries("4 servers, 1 hop")
	far := fig.AddSeries("4 servers, 3 hops")
	total := o.scaled(60000, 1200)
	depths := []int{1, 2, 4, 8}
	hops := []int{1, 3}
	times, err := runner.Map(o.Parallel, len(depths)*len(hops), func(i int) (timedPoint, error) {
		depth, hop := depths[i/len(hops)], hops[i%len(hops)]
		p := o.P
		p.RMCQueueDepth = depth
		od := o
		od.P = p
		servers, err := serversAt(od, fig7Client(od), hop, 4)
		if err != nil {
			return timedPoint{}, err
		}
		res, err := (microRun{
			Client: fig7Client(od), Servers: servers,
			Threads: 4, AccessesPerThread: total / 4,
		}).run(od)
		if err != nil {
			return timedPoint{}, err
		}
		return timedPoint{float64(res.Elapsed) / float64(params.Millisecond), res.Metrics}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, ms := range times {
		o.addMetrics(ms.snap)
		depth, hop := depths[i/len(hops)], hops[i%len(hops)]
		if hop == 1 {
			near.Add(float64(depth), ms.v)
		} else {
			far.Add(float64(depth), ms.v)
		}
	}
	fig.Note("at depth 1 the near configuration can exceed the far one (retry waste); deeper queues restore near <= far")
	return fig, nil
}
