package experiments

import (
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/btree"
	"repro/internal/memmodel"
	"repro/internal/params"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/swap"
)

// btreeResidency scales the swap configuration's resident-page budget
// with the workload so scaled-down runs keep the paper's
// footprint-vs-local-memory ratio.
func btreeResidency(o Options) int {
	r := int(float64(o.P.SwapResidentPages) * o.Scale)
	if r < 64 {
		r = 64
	}
	return r
}

// drawKeys draws the paper's population: n distinct random keys over
// the dense space [0, 4n). A flat bitset dedups with the same
// acceptance sequence as a map at a fraction of the cost — population
// is pure setup, but at paper scale it was the single largest profile
// entry. Sweeps that build one tree per point from the same (seed, n)
// draw the keys once and share the slice; buildTreeFrom never mutates
// it.
func drawKeys(o Options, n int) []uint64 {
	rng := rand.New(rand.NewSource(o.Seed))
	keys := make([]uint64, 0, n)
	seen := make([]bool, int64(n)*4)
	for len(keys) < n {
		k := uint64(rng.Int63n(int64(n) * 4))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// buildTreeFrom bulk-loads the drawn keys at the given fanout so every
// level but the last is full and the last fills left to right.
func buildTreeFrom(fanout int, keys []uint64) (*btree.Tree, error) {
	tr, err := btree.New(fanout)
	if err != nil {
		return nil, err
	}
	if err := tr.BulkLoad(keys); err != nil {
		return nil, err
	}
	return tr, nil
}

// buildTree populates a tree the paper's way: n random keys, bulk-loaded.
func buildTree(o Options, fanout, n int) (*btree.Tree, []uint64, error) {
	keys := drawKeys(o, n)
	tr, err := buildTreeFrom(fanout, keys)
	if err != nil {
		return nil, nil, err
	}
	return tr, keys, nil
}

// minShardSearches is the per-shard floor below which within-point
// sharding isn't worth a pool spin-up.
const minShardSearches = 4096

// searchSweep averages the search cost over random probes. The probe
// keys are drawn up front (the rng sequence is exactly the serial
// loop's — nothing else draws from it), then priced through the batched
// search path. Stateless accessors additionally shard the probe set
// across the runner pool: params.Duration is an integer, so the ordered
// per-shard sums reduce to the exact serial total and the result is
// byte-identical at every -parallel setting. Stateful accessors (swap)
// keep their access sequence serial — their page-cache state is
// order-dependent.
func searchSweep(o Options, tr *btree.Tree, keySpace int64, searches int, acc memmodel.Accessor) params.Duration {
	rng := rand.New(rand.NewSource(o.Seed + 1))
	keys := make([]uint64, searches)
	for i := range keys {
		keys[i] = uint64(rng.Int63n(keySpace))
	}
	serial := func(keys []uint64) params.Duration {
		var b memmodel.Batcher
		var total params.Duration
		for _, k := range keys {
			_, cost, _ := tr.SearchBatch(k, acc, &b)
			total += cost
		}
		return total
	}
	var total params.Duration
	stateless := false
	switch acc.(type) {
	case memmodel.Local, memmodel.Remote:
		stateless = true
	}
	if !stateless || o.Parallel <= 1 || searches < 2*minShardSearches {
		total = serial(keys)
	} else {
		shards := o.Parallel
		if max := searches / minShardSearches; shards > max {
			shards = max
		}
		parts, err := runner.Map(o.Parallel, shards, func(i int) (params.Duration, error) {
			return serial(keys[searches*i/shards : searches*(i+1)/shards]), nil
		})
		if err != nil { // tasks never fail; defensive fallback
			total = serial(keys)
		} else {
			for _, p := range parts {
				total += p
			}
		}
	}
	return params.Duration(float64(total) / float64(searches))
}

// Fig9 sweeps the b-tree fanout (children per node) under remote swap to
// find the optimum: a U-shaped curve with its minimum where a node fills
// exactly one 4 KiB page (~168 children at 24 bytes per entry), the
// paper's headline 168. The remote-memory series is flat by comparison —
// Equation (2) does not care about page locality.
func Fig9(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("fig9", "B-tree search time vs children per node (10M keys, scaled)",
		"children per node", "time per search (µs)")
	swapSeries := fig.AddSeries("remote swap")
	remoteSeries := fig.AddSeries("remote memory")

	nKeys := o.scaled(10_000_000, 20_000)
	searches := o.scaled(500_000, 1_000)
	resident := btreeResidency(o)

	fanouts := []int{8, 16, 32, 64, 96, 128, 168, 200, 256, 384, 512, 768, 1024}
	// Every fanout point populates from the same (seed, n) key set; draw
	// it once and share it read-only across the sweep tasks. Pre-sorting
	// here makes each point's BulkLoad sort near-linear; the built trees
	// are unchanged because BulkLoad sorts its own copy regardless of
	// input order.
	sharedKeys := drawKeys(o, nKeys)
	slices.Sort(sharedKeys)
	type fanoutPoint struct{ swap, remote float64 }
	points, err := runner.Map(o.Parallel, len(fanouts), func(i int) (fanoutPoint, error) {
		fanout := fanouts[i]
		tr, err := buildTreeFrom(fanout, sharedKeys)
		if err != nil {
			return fanoutPoint{}, err
		}
		if tr.FootprintBytes() <= uint64(resident)*params.PageSize {
			return fanoutPoint{}, fmt.Errorf("experiments: fig9 tree (%d bytes) fits in residency; raise Scale", tr.FootprintBytes())
		}
		sw, err := memmodel.NewSwap(o.P, swap.RemoteDevice{P: o.P, Hops: 1}, resident)
		if err != nil {
			return fanoutPoint{}, err
		}
		keySpace := int64(nKeys) * 4
		return fanoutPoint{
			swap:   float64(searchSweep(o, tr, keySpace, searches, sw)) / float64(params.Microsecond),
			remote: float64(searchSweep(o, tr, keySpace, searches, memmodel.Remote{P: o.P, Hops: 1})) / float64(params.Microsecond),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, fanout := range fanouts {
		swapSeries.Add(float64(fanout), points[i].swap)
		remoteSeries.Add(float64(fanout), points[i].remote)
	}
	fig.Note("expected: U-shape for remote swap with minimum near fanout 168 (one node = one page); remote memory nearly flat")
	return fig, nil
}

// Fig10 sweeps the key count at the optimal fanout: remote memory grows
// smoothly with tree depth while remote swap explodes once the tree
// outgrows local residency (page thrashing). The analytic Equation 1/2
// predictions bracket the measured curves.
func Fig10(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("fig10", "B-tree search scalability vs number of keys (fanout 168)",
		"keys in tree", "time per search (µs)")
	remoteSeries := fig.AddSeries("remote memory")
	swapSeries := fig.AddSeries("remote swap")

	searches := o.scaled(500_000, 1_000)
	resident := btreeResidency(o)
	base := o.scaled(10_000_000, 20_000)
	fracs := []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0}
	type sizePoint struct {
		n            int
		remote, swap float64
	}
	points, err := runner.Map(o.Parallel, len(fracs), func(i int) (sizePoint, error) {
		n := int(float64(base) * fracs[i])
		if n < 128 {
			n = 128
		}
		tr, _, err := buildTree(o, 168, n)
		if err != nil {
			return sizePoint{}, err
		}
		sw, err := memmodel.NewSwap(o.P, swap.RemoteDevice{P: o.P, Hops: 1}, resident)
		if err != nil {
			return sizePoint{}, err
		}
		keySpace := int64(n) * 4
		return sizePoint{
			n:      n,
			remote: float64(searchSweep(o, tr, keySpace, searches, memmodel.Remote{P: o.P, Hops: 1})) / float64(params.Microsecond),
			swap:   float64(searchSweep(o, tr, keySpace, searches, sw)) / float64(params.Microsecond),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, pt := range points {
		remoteSeries.Add(float64(pt.n), pt.remote)
		swapSeries.Add(float64(pt.n), pt.swap)
	}
	fig.Note("expected: remote memory grows stepwise with depth; remote swap explodes once the tree outgrows the %d resident pages", resident)
	return fig, nil
}

// Equations cross-checks the closed-form models against the mechanistic
// ones on a uniform-locality trace and reports the crossover locality.
func Equations(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("eq", "Equations (1) and (2) vs mechanistic models",
		"accesses per resident page (locality)", "total memory time (ms)")
	eq1 := fig.AddSeries("Eq(1) remote swap")
	eq2 := fig.AddSeries("Eq(2) remote memory")
	meas1 := fig.AddSeries("measured swap")
	meas2 := fig.AddSeries("measured remote")

	pages := o.scaled(2000, 100)
	perPages := []int{1, 2, 4, 8, 16, 32, 64, 128}
	type eqPoint struct{ pred1, pred2, meas1, meas2 params.Duration }
	points, err := runner.Map(o.Parallel, len(perPages), func(i int) (eqPoint, error) {
		perPage := perPages[i]
		total := uint64(pages) * uint64(perPage)

		sw, err := memmodel.NewSwap(o.P, swap.RemoteDevice{P: o.P, Hops: 1}, 64)
		if err != nil {
			return eqPoint{}, err
		}
		var pt eqPoint
		rm := memmodel.Remote{P: o.P, Hops: 1}
		ops := make([]memmodel.AccessOp, 0, total)
		for pg := 0; pg < pages; pg++ {
			for j := 0; j < perPage; j++ {
				ops = append(ops, memmodel.AccessOp{Addr: uint64(pg)*params.PageSize + uint64(j*8)})
			}
		}
		pt.meas1 = memmodel.Batch(sw, ops)
		pt.meas2 = memmodel.Batch(rm, ops)
		in := anInputs(o, total, float64(perPage))
		if pt.pred1, err = in.RemoteSwapTime(); err != nil {
			return eqPoint{}, err
		}
		if pt.pred2, err = in.RemoteMemoryTime(); err != nil {
			return eqPoint{}, err
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	ms := func(d params.Duration) float64 { return float64(d) / float64(params.Millisecond) }
	for i, perPage := range perPages {
		x := float64(perPage)
		eq1.Add(x, ms(points[i].pred1))
		eq2.Add(x, ms(points[i].pred2))
		meas1.Add(x, ms(points[i].meas1))
		meas2.Add(x, ms(points[i].meas2))
	}
	in := anInputs(o, 1, 1)
	if x, err := in.CrossoverAPage(); err == nil {
		fig.Note("analytic crossover: remote swap overtakes remote memory above %.1f accesses per resident page", x)
	}
	return fig, nil
}
