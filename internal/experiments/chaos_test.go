package experiments

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// chaosPlan is a moderate, seeded fault schedule aimed at fig7's hot
// traffic: node 6 is the client, node 2 its first 1-hop server, so the
// down window forces detours, the storm hits the client's admissions,
// and the stall hits the server — all while every link traversal rolls
// drop/corrupt/delay probabilities.
func chaosPlan(t *testing.T) *faults.Plan {
	t.Helper()
	plan, err := faults.Parse("seed=7,drop=0.01,corrupt=0.002,delayp=0.02,delay=300ns," +
		"down=2-6@0:50us,storm=6@20us:40us,stall=2@10us:60us")
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// runChaos regenerates one experiment under the given plan and returns
// the rendered figure plus the merged metrics snapshot.
func runChaos(t *testing.T, id string, parallel int, plan *faults.Plan) (*stats.Figure, metrics.Snapshot) {
	t.Helper()
	gen, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Scale = 0.005
	o.Parallel = parallel
	if plan != nil {
		o.P.Faults = plan
	}
	var merged metrics.Merged
	o.Metrics = &merged
	fig, err := gen(o)
	if err != nil {
		t.Fatalf("%s under %v at Parallel=%d: %v", id, plan, parallel, err)
	}
	return fig, merged.Snapshot()
}

// TestChaosDeterminism: the merge-determinism contract survives the
// fault layer. Each sweep point owns its injector and consumes its
// seeded stream in event order, so table1 and fig7 under a fault plan
// render byte-identical metrics at any worker count.
func TestChaosDeterminism(t *testing.T) {
	for _, id := range []string{"table1", "fig7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			figSerial, serial := runChaos(t, id, 1, chaosPlan(t))
			figConc, conc := runChaos(t, id, 8, chaosPlan(t))
			if got, want := conc.Prometheus(), serial.Prometheus(); got != want {
				t.Errorf("faulted metrics differ between Parallel=8 and Parallel=1:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
			}
			if got, want := figConc.Render(), figSerial.Render(); got != want {
				t.Errorf("faulted figures differ between Parallel=8 and Parallel=1:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
			}
			if serial.Prometheus() == "" {
				t.Fatal("empty Prometheus rendering")
			}
		})
	}
}

// TestChaosRecoveryCoverage: under the moderate plan the recovery
// machinery actually fires — faults are injected, frames retransmit,
// routes detour, storms and stalls hit — and nothing is abandoned,
// because a 1-2% per-traversal fault rate is far below the retransmit
// budget.
func TestChaosRecoveryCoverage(t *testing.T) {
	_, snap := runChaos(t, "fig7", 0, chaosPlan(t))
	for _, fam := range []string{
		metrics.FamFaultDrops,
		metrics.FamFaultCorruptions,
		metrics.FamFaultDelays,
		metrics.FamRMCRetransmits,
		metrics.FamRMCStormNACKs,
		metrics.FamRMCStalls,
		metrics.FamMeshReroutes,
		metrics.FamMeshDetourHops,
	} {
		if snap.Total(fam) == 0 {
			t.Errorf("family %s is zero under the chaos plan", fam)
		}
	}
	// Zero abandoned requests: recovery absorbed every injected fault.
	if got := snap.Total(metrics.FamRMCAbandoned); got != 0 {
		t.Errorf("%g requests abandoned at fault rates below the retry budget", got)
	}
	if got := snap.Total(metrics.FamMeshUnreachable); got != 0 {
		t.Errorf("%g frames unroutable under a single-link outage", got)
	}
	// The injected corruption surfaced through the existing CRC family.
	if snap.Total(metrics.FamHNCCRCFailures) == 0 {
		t.Error("corruption injected but no CRC failures counted")
	}
}

// TestEmptyPlanByteIdentical: an empty plan (only a seed) must leave
// figures AND metrics byte-identical to a run with no plan at all — the
// fault layer is provably absent when not armed, down to the absence of
// its metric families.
func TestEmptyPlanByteIdentical(t *testing.T) {
	empty := &faults.Plan{Seed: 99} // non-nil, schedules nothing
	if !empty.Empty() {
		t.Fatal("seed-only plan not empty")
	}
	figNone, none := runChaos(t, "fig7", 0, nil)
	figEmpty, withEmpty := runChaos(t, "fig7", 0, empty)
	if got, want := figEmpty.Render(), figNone.Render(); got != want {
		t.Errorf("empty plan changed the figure:\n--- no plan ---\n%s\n--- empty plan ---\n%s", want, got)
	}
	if got, want := withEmpty.Prometheus(), none.Prometheus(); got != want {
		t.Errorf("empty plan changed the metrics:\n--- no plan ---\n%s\n--- empty plan ---\n%s", want, got)
	}
	if strings.Contains(none.Prometheus(), "ncdsm_fault_") {
		t.Error("fault families present without a plan")
	}

	// And the faulted snapshot is the only one carrying fault families.
	_, chaotic := runChaos(t, "fig7", 0, chaosPlan(t))
	for _, fam := range []string{metrics.FamFaultDrops, metrics.FamRMCRetransmits, metrics.FamMeshReroutes} {
		if !strings.Contains(chaotic.Prometheus(), fam) {
			t.Errorf("faulted snapshot missing %s", fam)
		}
	}
}
