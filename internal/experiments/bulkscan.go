package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vm"
)

// BulkScan contrasts the two access shapes the bulk data plane
// separates: a pointer chase (dependent single-line accesses, each
// paying the full round trip before the next can issue) and a columnar
// scan (the same lines as one scatter-gather burst). Both run over
// local and remote memory across transfer sizes; the remote/local
// ratio is the paper's headline number, and the burst collapses it —
// remote bulk approaches local speed because the doorbell, descriptor,
// and ack amortize across the whole transfer while frames pipeline
// behind the DRAM banks.
func BulkScan(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("ablationI", "Pointer chase vs bulk columnar scan",
		"transfer size (KiB)", "scan time (µs)")
	chaseRemote := fig.AddSeries("pointer chase, remote")
	bulkRemote := fig.AddSeries("bulk scan, remote")
	chaseLocal := fig.AddSeries("pointer chase, local")
	bulkLocal := fig.AddSeries("bulk scan, local")

	sizes := []int{4 << 10, 16 << 10, 64 << 10, 256 << 10}
	type scanPoint struct {
		times [4]sim.Time
		snaps [4]metrics.Snapshot
	}
	points, err := runner.Map(o.Parallel, len(sizes), func(i int) (scanPoint, error) {
		var pt scanPoint
		for j, run := range []struct {
			bulk, remote bool
		}{{false, true}, {true, true}, {false, false}, {true, false}} {
			elapsed, snap, err := runScanShape(o, run.bulk, run.remote, sizes[i])
			if err != nil {
				return scanPoint{}, err
			}
			pt.times[j] = elapsed
			pt.snaps[j] = snap
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	for i, size := range sizes {
		for _, s := range points[i].snaps {
			o.addMetrics(s)
		}
		kib := float64(size) / 1024
		us := func(t sim.Time) float64 { return float64(t) / float64(params.Microsecond) }
		chaseRemote.Add(kib, us(points[i].times[0]))
		bulkRemote.Add(kib, us(points[i].times[1]))
		chaseLocal.Add(kib, us(points[i].times[2]))
		bulkLocal.Add(kib, us(points[i].times[3]))
	}
	at4K := points[0].times
	fig.Note("at 4 KiB, one ReadBulk burst is %.1fx cheaper than 64 single-line Access calls to the same remote lines",
		ratio(at4K[0], at4K[1]))
	fig.Note("remote/local ratio: %.1fx pointer-chasing, %.1fx bulk — bursts take remote memory from prohibitive to near-local for scan-shaped queries",
		ratio(at4K[0], at4K[2]), ratio(at4K[1], at4K[3]))
	return fig, nil
}

func ratio(a, b sim.Time) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// runScanShape times one scan of the given size and shape on a fresh
// system: bulk issues one ReadBulk over the whole buffer; scalar chains
// dependent single-line accesses (each issued from the previous one's
// completion, the dependence a pointer chase imposes).
func runScanShape(o Options, bulk, remote bool, bytes int) (sim.Time, metrics.Snapshot, error) {
	sys, err := core.NewSystem(o.P)
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	region, err := sys.Region(1)
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	var va vm.Virt
	if remote {
		rng, err := region.GrowFrom(2, uint64(max(bytes, 1<<20)))
		if err != nil {
			return 0, metrics.Snapshot{}, err
		}
		va, err = region.MapBorrowed(rng)
		if err != nil {
			return 0, metrics.Snapshot{}, err
		}
	} else {
		va, err = region.Malloc(uint64(bytes))
		if err != nil {
			return 0, metrics.Snapshot{}, err
		}
	}
	lines := bytes / int(params.CacheLineSize)
	var done sim.Time
	if bulk {
		sink := make([]byte, bytes)
		err = region.ReadBulk(0, va, []core.Span{{Offset: 0, Bytes: uint64(bytes)}}, sink,
			func(t sim.Time, err2 error) {
				if err2 == nil {
					done = t
				} else {
					err = err2
				}
			})
		if err != nil {
			return 0, metrics.Snapshot{}, err
		}
	} else {
		var chase func(i int, now sim.Time) error
		chase = func(i int, now sim.Time) error {
			if i == lines {
				done = now
				return nil
			}
			return region.Access(now, 0, va+vm.Virt(i)*vm.Virt(params.CacheLineSize), false,
				func(t sim.Time) {
					if err := chase(i+1, t); err != nil {
						panic(fmt.Sprintf("experiments: pointer chase: %v", err))
					}
				})
		}
		if err := chase(0, 0); err != nil {
			return 0, metrics.Snapshot{}, err
		}
	}
	sys.Run()
	if done == 0 {
		return 0, metrics.Snapshot{}, fmt.Errorf("experiments: %v-byte scan (bulk=%v remote=%v) did not finish", bytes, bulk, remote)
	}
	return done, sys.Registry().Snapshot(), nil
}
