package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/params"
)

// ApplyParam sets one named calibration knob from its string form, for
// the harness's -sweep flag and ad-hoc sensitivity studies. Duration
// knobs accept Go duration syntax ("420ns", "1.5us"); integer knobs
// accept plain integers. SweepableParams lists the accepted names.
func ApplyParam(p *params.Params, key, value string) error {
	setDur := func(dst *params.Duration) error {
		d, err := time.ParseDuration(value)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", key, err)
		}
		*dst = params.FromStd(d)
		return nil
	}
	setInt := func(dst *int) error {
		n, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", key, err)
		}
		*dst = n
		return nil
	}
	switch key {
	case "RMCClientOccupancy":
		return setDur(&p.RMCClientOccupancy)
	case "RMCServerOccupancy":
		return setDur(&p.RMCServerOccupancy)
	case "RMCRetryPenalty":
		return setDur(&p.RMCRetryPenalty)
	case "RMCRetryWaste":
		return setDur(&p.RMCRetryWaste)
	case "HopLatency":
		return setDur(&p.HopLatency)
	case "DRAMLatency":
		return setDur(&p.DRAMLatency)
	case "SwapTrapOverhead":
		return setDur(&p.SwapTrapOverhead)
	case "SwapPageTransfer":
		return setDur(&p.SwapPageTransfer)
	case "RMCQueueDepth":
		return setInt(&p.RMCQueueDepth)
	case "RemoteOutstanding":
		return setInt(&p.RemoteOutstanding)
	case "PrefetchDepth":
		return setInt(&p.PrefetchDepth)
	case "SwapResidentPages":
		return setInt(&p.SwapResidentPages)
	default:
		return fmt.Errorf("experiments: unknown sweep parameter %q (available: %s)",
			key, strings.Join(SweepableParams(), ", "))
	}
}

// SweepableParams lists the knobs ApplyParam accepts.
func SweepableParams() []string {
	return []string{
		"RMCClientOccupancy", "RMCServerOccupancy", "RMCRetryPenalty", "RMCRetryWaste",
		"HopLatency", "DRAMLatency", "SwapTrapOverhead", "SwapPageTransfer",
		"RMCQueueDepth", "RemoteOutstanding", "PrefetchDepth", "SwapResidentPages",
	}
}

// ParseSweep parses a "-sweep Key=v1,v2,v3" specification.
func ParseSweep(spec string) (key string, values []string, err error) {
	parts := strings.SplitN(spec, "=", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", nil, fmt.Errorf("experiments: sweep spec %q, want Key=v1,v2,...", spec)
	}
	values = strings.Split(parts[1], ",")
	for _, v := range values {
		if strings.TrimSpace(v) == "" {
			return "", nil, fmt.Errorf("experiments: empty value in sweep spec %q", spec)
		}
	}
	return parts[0], values, nil
}
