package stats

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strings"
)

// CSV renders the figure as an RFC-4180 table: one row per distinct x,
// one column per series, ready for any plotting tool. Notes become
// trailing comment-style rows prefixed with "#".
func (f *Figure) CSV() (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)

	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := w.Write(header); err != nil {
		return "", err
	}

	for _, k := range f.xKeys() {
		label := k.label
		if label == "" {
			label = trimFloat(k.x)
		}
		row := []string{label}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == k.x && p.Label == k.label {
					cell = fmt.Sprintf("%g", p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		if err := w.Write(row); err != nil {
			return "", err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", err
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String(), nil
}

// Markdown renders the figure as a GitHub-flavored table, for dropping
// measured results straight into EXPERIMENTS-style documents.
func (f *Figure) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", f.ID, f.Title)
	b.WriteString("| " + f.XLabel)
	for _, s := range f.Series {
		b.WriteString(" | " + s.Name)
	}
	b.WriteString(" |\n|")
	for i := 0; i < len(f.Series)+1; i++ {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, k := range f.xKeys() {
		label := k.label
		if label == "" {
			label = trimFloat(k.x)
		}
		b.WriteString("| " + label)
		for _, s := range f.Series {
			cell := "—"
			for _, p := range s.Points {
				if p.X == k.x && p.Label == k.label {
					cell = trimFloat(p.Y)
					break
				}
			}
			b.WriteString(" | " + cell)
		}
		b.WriteString(" |\n")
	}
	fmt.Fprintf(&b, "\n*(%s)*\n", f.YLabel)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// xkey mirrors Render's x-value collection.
type figXKey struct {
	x     float64
	label string
}

// xKeys returns the union of x values across series in display order.
func (f *Figure) xKeys() []figXKey {
	seen := map[figXKey]bool{}
	var xs []figXKey
	for _, s := range f.Series {
		for _, p := range s.Points {
			k := figXKey{p.X, p.Label}
			if !seen[k] {
				seen[k] = true
				xs = append(xs, k)
			}
		}
	}
	sort.SliceStable(xs, func(i, j int) bool {
		if xs[i].x != xs[j].x {
			return xs[i].x < xs[j].x
		}
		return xs[i].label < xs[j].label
	})
	return xs
}
