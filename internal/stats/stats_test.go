package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Observe(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if r.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	want := math.Sqrt(32.0 / 7.0) // sample stddev
	if math.Abs(r.StdDev()-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", r.StdDev(), want)
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.StdDev() != 0 {
		t.Error("empty Running should report zeros")
	}
	r.Observe(3)
	if r.StdDev() != 0 {
		t.Error("single-sample stddev should be 0")
	}
	if r.Min() != 3 || r.Max() != 3 {
		t.Error("single-sample min/max wrong")
	}
}

func TestRunningMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Keep magnitudes sane: Welford is not robust to values near
			// the float64 overflow threshold, and no simulated latency is.
			x = math.Mod(x, 1e9)
			r.Observe(x)
			n++
		}
		if n == 0 {
			return true
		}
		return r.Mean() >= r.Min()-1e-9 && r.Mean() <= r.Max()+1e-9 && r.N() == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, x := range []float64{1, 2, 3, 100, 1000} {
		h.Observe(x)
	}
	h.Observe(-5)         // ignored
	h.Observe(math.NaN()) // ignored
	if h.N() != 5 {
		t.Errorf("N = %d, want 5", h.N())
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %v", h.Max())
	}
	if q := h.Quantile(0.5); q < 2 || q > 8 {
		t.Errorf("median estimate %v outside [2,8]", q)
	}
	if q := h.Quantile(1.0); q < 1000 {
		t.Errorf("p100 estimate %v below true max", q)
	}
	if q := h.Quantile(-1); q <= 0 {
		t.Errorf("clamped quantile %v", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.9) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []uint16) bool {
		var h Histogram
		for _, x := range xs {
			h.Observe(float64(x))
		}
		prev := 0.0
		for q := 0.1; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFigureRender(t *testing.T) {
	f := NewFigure("fig7", "Client bottleneck", "threads", "time (ms)")
	s1 := f.AddSeries("1 server")
	s1.Add(1, 100)
	s1.Add(2, 50)
	s1.Add(4, 48)
	s2 := f.AddSeries("4 servers")
	s2.Add(4, 47)
	f.Note("saturation at %d threads", 2)

	out := f.Render()
	for _, want := range []string{"fig7", "1 server", "4 servers", "100", "48", "saturation at 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureLabeledPoints(t *testing.T) {
	f := NewFigure("fig8", "Server congestion", "config", "time")
	s := f.AddSeries("control thread")
	s.AddLabeled("1n x 4t", 1, 10)
	s.AddLabeled("3n x 4t", 3, 10)
	s.AddLabeled("6n x 4t", 6, 25)
	out := f.Render()
	if !strings.Contains(out, "3n x 4t") {
		t.Errorf("labeled x missing:\n%s", out)
	}
}

func TestFindSeries(t *testing.T) {
	f := NewFigure("x", "", "", "")
	s := f.AddSeries("a")
	if f.FindSeries("a") != s {
		t.Error("FindSeries failed to locate series")
	}
	if f.FindSeries("b") != nil {
		t.Error("FindSeries invented a series")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.5:     "3.5",
		1234567: "1234567",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestCSVExport(t *testing.T) {
	f := NewFigure("fig6", "Latency", "hops", "µs")
	a := f.AddSeries("mesh")
	a.Add(1, 0.9)
	a.Add(2, 1.2)
	b := f.AddSeries("htoe")
	b.Add(1, 4.8)
	f.Note("a note")
	out, err := f.CSV()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "hops,mesh,htoe" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,0.9,4.8" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,1.2," {
		t.Errorf("row 2 = %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "# a note") {
		t.Errorf("note row = %q", lines[3])
	}
}

func TestMarkdownExport(t *testing.T) {
	f := NewFigure("fig7", "Bottleneck", "config", "ms")
	s := f.AddSeries("1 server")
	s.AddLabeled("2t", 1, 0.55)
	out := f.Markdown()
	for _, want := range []string{"### fig7", "| config | 1 server |", "| 2t | 0.55 |", "*(ms)*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestChartRendering(t *testing.T) {
	f := NewFigure("fig9", "U-shape", "fanout", "µs")
	s := f.AddSeries("swap")
	for i, y := range []float64{500, 300, 200, 300, 500} {
		s.Add(float64(i*100+8), y)
	}
	r := f.AddSeries("remote")
	for i := 0; i < 5; i++ {
		r.Add(float64(i*100+8), 20)
	}
	out := f.Chart(40, 10)
	for _, want := range []string{"fig9", "* swap", "o remote", "(µs)", "fanout"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The flat series occupies the bottom row; the U-shape's minimum is
	// strictly below its endpoints.
	if !strings.Contains(out, "o") || !strings.Contains(out, "*") {
		t.Error("glyphs missing")
	}
}

func TestChartCategoricalAndEdgeCases(t *testing.T) {
	f := NewFigure("fig8", "knee", "load", "ms")
	s := f.AddSeries("control")
	s.AddLabeled("none", 0, 1)
	s.AddLabeled("3nx4t", 1, 1)
	s.AddLabeled("6nx4t", 2, 3)
	out := f.Chart(30, 8)
	if !strings.Contains(out, "none ... 6nx4t") {
		t.Errorf("categorical x labels missing:\n%s", out)
	}
	// Degenerate figures render without panicking.
	empty := NewFigure("x", "empty", "", "")
	if !strings.Contains(empty.Chart(40, 10), "no data") {
		t.Error("empty chart should say so")
	}
	flat := NewFigure("y", "flat", "", "")
	fs := flat.AddSeries("s")
	fs.Add(1, 5)
	if flat.Chart(2, 2) == "" {
		t.Error("tiny chart empty")
	}
}

func TestHistogramSubUnitBucket(t *testing.T) {
	var h Histogram
	// Sub-unit samples file into bucket 0 = [0,1): their quantile upper
	// bound is 1, not 2 — sub-nanosecond latencies must not inflate
	// estimates (the doc'd bucket boundary).
	for i := 0; i < 10; i++ {
		h.Observe(0.25)
	}
	if q := h.Quantile(0.99); q != 1 {
		t.Errorf("p99 of sub-unit samples = %v, want 1", q)
	}
	// Mixing in large samples keeps bucket separation: the median stays
	// at the sub-unit bound, the tail reflects the large bucket.
	for i := 0; i < 2; i++ {
		h.Observe(1000)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("median = %v, want 1", q)
	}
	if q := h.Quantile(1.0); q < 1000 {
		t.Errorf("p100 = %v, want >= 1000", q)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	// Each power of two is the *lower* edge of its bucket, so the
	// quantile upper bound is the next power: Observe(2^k) -> 2^(k+1).
	for _, c := range []struct{ x, want float64 }{
		{0, 1}, {0.5, 1}, {1, 2}, {1.5, 2}, {2, 4}, {3, 4}, {4, 8}, {1024, 2048},
	} {
		var h Histogram
		h.Observe(c.x)
		if q := h.Quantile(1.0); q != c.want {
			t.Errorf("Quantile after Observe(%v) = %v, want %v", c.x, q, c.want)
		}
	}
}
