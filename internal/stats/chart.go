package stats

import (
	"fmt"
	"math"
	"strings"
)

// seriesGlyphs mark points of successive series in a chart.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart renders the figure as an ASCII scatter plot: x is the point's X
// value (or its rank for labeled categorical axes), y is auto-scaled,
// each series gets a glyph. It is deliberately simple — enough to see a
// U-shape, a knee, or a crossover straight in the terminal.
func (f *Figure) Chart(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	keys := f.xKeys()
	if len(keys) == 0 {
		return fmt.Sprintf("== %s: %s == (no data)\n", f.ID, f.Title)
	}

	categorical := false
	for _, k := range keys {
		if k.label != "" {
			categorical = true
		}
	}
	xpos := make(map[figXKey]float64, len(keys))
	var xmin, xmax float64
	if categorical {
		for i, k := range keys {
			xpos[k] = float64(i)
		}
		xmin, xmax = 0, float64(len(keys)-1)
	} else {
		xmin, xmax = keys[0].x, keys[0].x
		for _, k := range keys {
			xpos[k] = k.x
			if k.x < xmin {
				xmin = k.x
			}
			if k.x > xmax {
				xmax = k.x
			}
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Y < ymin {
				ymin = p.Y
			}
			if p.Y > ymax {
				ymax = p.Y
			}
		}
	}
	if math.IsInf(ymin, 1) {
		return fmt.Sprintf("== %s: %s == (no data)\n", f.ID, f.Title)
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, glyph byte) {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		row := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		if grid[row][col] != ' ' && grid[row][col] != glyph {
			grid[row][col] = '&' // collision marker
			return
		}
		grid[row][col] = glyph
	}
	for si, s := range f.Series {
		g := seriesGlyphs[si%len(seriesGlyphs)]
		for _, p := range s.Points {
			plot(xpos[figXKey{p.X, p.Label}], p.Y, g)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	yLabelW := 10
	for r := 0; r < height; r++ {
		yv := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%*s |%s\n", yLabelW, trimFloat(yv), string(grid[r]))
	}
	fmt.Fprintf(&b, "%*s +%s\n", yLabelW, "", strings.Repeat("-", width))
	if categorical {
		fmt.Fprintf(&b, "%*s  %s ... %s\n", yLabelW, "", keys[0].label, keys[len(keys)-1].label)
	} else {
		fmt.Fprintf(&b, "%*s  %s .. %s (%s)\n", yLabelW, "", trimFloat(xmin), trimFloat(xmax), f.XLabel)
	}
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	fmt.Fprintf(&b, "  (%s)\n", f.YLabel)
	return b.String()
}
