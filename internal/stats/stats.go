// Package stats provides the measurement plumbing shared by the
// experiment harness: counters, running statistics, latency histograms,
// and labeled series rendered as text tables matching the rows/series the
// paper's figures report.
//
// Ownership: none of these collectors are internally synchronized, by
// design — they sit on simulation hot paths. Each collector is owned by
// exactly one goroutine at a time. Under the parallel harness
// (internal/runner) that means: collectors created inside a run
// (thread latency histograms, resource counters) are owned by the
// worker executing that run; Figure and Series are owned by the
// generator goroutine, which appends merged results only after the
// futures deliver them, in submission order. Workers never touch a
// Figure directly. Sharing a collector across concurrent runs is a
// race; give every run its own and merge at the Wait point.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Running accumulates count/mean/min/max/variance online (Welford).
type Running struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Observe adds one sample.
func (r *Running) Observe(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the sample count.
func (r *Running) N() uint64 { return r.n }

// Mean returns the sample mean (0 with no samples).
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest sample (0 with no samples).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (0 with no samples).
func (r *Running) Max() float64 { return r.max }

// StdDev returns the sample standard deviation (0 with <2 samples).
func (r *Running) StdDev() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n-1))
}

// Histogram is a log2-bucketed latency histogram. Bucket 0 holds
// samples in [0, 1); bucket i (i >= 1) holds samples in [2^(i-1), 2^i);
// the last bucket also absorbs anything larger. It keeps exact
// min/max/mean alongside the buckets.
type Histogram struct {
	buckets [64]uint64
	run     Running
}

// Observe records one non-negative sample.
func (h *Histogram) Observe(x float64) {
	if x < 0 || math.IsNaN(x) {
		return
	}
	h.run.Observe(x)
	b := 0
	if x >= 1 {
		b = int(math.Log2(x)) + 1
		if b > 63 {
			b = 63
		}
	}
	h.buckets[b]++
}

// N returns the sample count.
func (h *Histogram) N() uint64 { return h.run.N() }

// Mean returns the exact sample mean.
func (h *Histogram) Mean() float64 { return h.run.Mean() }

// Max returns the exact maximum sample.
func (h *Histogram) Max() float64 { return h.run.Max() }

// Quantile returns an upper-bound estimate of the q-quantile (0..1) from
// the log buckets: 2^i for bucket i, each bucket's exclusive upper edge.
func (h *Histogram) Quantile(q float64) float64 {
	if h.run.N() == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.run.N())))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			return math.Pow(2, float64(i))
		}
	}
	return h.run.Max()
}

// Point is one (x, y) sample of a labeled series.
type Point struct {
	X, Y  float64
	Label string // optional x label (e.g. "4t, 2 hops")
}

// Series is a named sequence of points, the unit a figure plots.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// AddLabeled appends a labeled point.
func (s *Series) AddLabeled(label string, x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Label: label})
}

// Figure is a set of series plus identifying metadata; the harness's unit
// of output. Rendered, it prints the same rows/series the paper reports.
type Figure struct {
	ID     string // e.g. "fig7"
	Title  string
	XLabel string
	YLabel string
	Series []*Series
	Notes  []string
}

// NewFigure creates an empty figure.
func NewFigure(id, title, xlabel, ylabel string) *Figure {
	return &Figure{ID: id, Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, attaches, and returns a new series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Note attaches a free-text observation to the rendered figure.
func (f *Figure) Note(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// FindSeries returns the series with the given name, or nil.
func (f *Figure) FindSeries(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Render prints the figure as an aligned text table: one row per distinct
// x value, one column per series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)

	// Collect the union of x values (preserving label text when present).
	type xkey struct {
		x     float64
		label string
	}
	seen := map[xkey]bool{}
	var xs []xkey
	for _, s := range f.Series {
		for _, p := range s.Points {
			k := xkey{p.X, p.Label}
			if !seen[k] {
				seen[k] = true
				xs = append(xs, k)
			}
		}
	}
	sort.SliceStable(xs, func(i, j int) bool {
		if xs[i].x != xs[j].x {
			return xs[i].x < xs[j].x
		}
		return xs[i].label < xs[j].label
	})

	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, k := range xs {
		label := k.label
		if label == "" {
			label = trimFloat(k.x)
		}
		row := []string{label}
		for _, s := range f.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == k.x && p.Label == k.label {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
			_ = i
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := range row {
				b.WriteString(strings.Repeat("-", widths[i]) + "  ")
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "(%s)\n", f.YLabel)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
