// Package addr implements the physical-address algebra of the paper.
//
// A physical address is 48 bits wide. Its 14 most-significant bits carry
// the identifier of the node owning the memory; the remaining 34 bits are
// the local physical address within that node (enough for 16 GB). Node
// identifiers start at 1: a zero prefix always means "local", so every
// node has the identical memory-map conception of Figure 3 and the RMC
// needs no translation tables. Prefixing a local physical address with
// the owner's identifier (as the reservation protocol of Figure 4 does)
// yields the address remote processors use to reach it.
package addr

import "fmt"

// Widths fixed by the paper's memory map (Figure 3).
const (
	// PrefixBits is the width of the node-identifier prefix.
	PrefixBits = 14

	// LocalBits is the width of the node-local physical address.
	LocalBits = 34

	// TotalBits is the full physical address width.
	TotalBits = PrefixBits + LocalBits

	// LocalSpace is the size of one node's local address space (16 GB).
	LocalSpace uint64 = 1 << LocalBits

	// localMask extracts the node-local part of an address.
	localMask uint64 = LocalSpace - 1

	// MaxNode is the largest representable node identifier.
	MaxNode = 1<<PrefixBits - 1
)

// Phys is a 48-bit physical address in the cluster-wide map.
type Phys uint64

// NodeID identifies a node. Valid node identifiers are 1..MaxNode;
// 0 is reserved to mean "the local node" in address prefixes.
type NodeID uint16

// Node returns the node prefix of the address: 0 for a local address,
// otherwise the identifier of the owning node.
func (a Phys) Node() NodeID { return NodeID(uint64(a) >> LocalBits) }

// Local returns the node-local part of the address (prefix cleared).
// This is the operation a server-side RMC performs on an incoming request
// before replaying it into its local memory system.
func (a Phys) Local() Phys { return Phys(uint64(a) & localMask) }

// IsLocal reports whether the address targets the local node (zero
// prefix). Memory operations on local addresses are routed to an on-board
// memory controller; all others are claimed by the RMC.
func (a Phys) IsLocal() bool { return a.Node() == 0 }

// WithNode returns the address prefixed with the given node identifier,
// as the reservation acknowledgment of Figure 4 does before returning a
// reserved physical range to the requester. It panics if the address
// already carries a prefix or the node identifier is invalid; both are
// programming errors in protocol code.
func (a Phys) WithNode(n NodeID) Phys {
	if !a.IsLocal() {
		panic(fmt.Sprintf("addr: WithNode on already-prefixed address %v", a))
	}
	if n == 0 || n > MaxNode {
		panic(fmt.Sprintf("addr: invalid node id %d", n))
	}
	return a | Phys(uint64(n)<<LocalBits)
}

// String renders the address in the paper's 48-bit hex style.
func (a Phys) String() string { return fmt.Sprintf("0x%012x", uint64(a)) }

// Valid reports whether the address fits in 48 bits.
func (a Phys) Valid() bool { return uint64(a) < 1<<TotalBits }

// Loopback reports whether the address is a loopback reference: a
// prefixed address whose prefix names the node asking. The paper notes
// this overlapped segment exists in every node's map but never occurs in
// practice because reservations are only handed out to other nodes; the
// RMC treats it by replaying locally.
func (a Phys) Loopback(self NodeID) bool { return !a.IsLocal() && a.Node() == self }

// Canonical returns the address as observed by the given node: loopback
// addresses collapse to their local form, all others are unchanged. Two
// addresses that are Canonical-equal name the same memory cell.
func (a Phys) Canonical(self NodeID) Phys {
	if a.Loopback(self) {
		return a.Local()
	}
	return a
}

// Line returns the address rounded down to its cache-line boundary.
func (a Phys) Line(lineSize uint64) Phys { return Phys(uint64(a) &^ (lineSize - 1)) }

// Page returns the address rounded down to its page boundary.
func (a Phys) Page(pageSize uint64) Phys { return Phys(uint64(a) &^ (pageSize - 1)) }

// Range is a half-open physical address interval [Start, Start+Size).
type Range struct {
	Start Phys
	Size  uint64
}

// End returns the first address past the range.
func (r Range) End() Phys { return r.Start + Phys(r.Size) }

// Contains reports whether the address lies within the range.
func (r Range) Contains(a Phys) bool { return a >= r.Start && a < r.End() }

// Overlaps reports whether two ranges share any address.
func (r Range) Overlaps(o Range) bool {
	return r.Size > 0 && o.Size > 0 && r.Start < o.End() && o.Start < r.End()
}

// Node returns the owning node of the range. Ranges never straddle node
// boundaries in this system: a reservation is carved from one node's
// local memory.
func (r Range) Node() NodeID { return r.Start.Node() }

// String renders the range as [start, end).
func (r Range) String() string { return fmt.Sprintf("[%v, %v)", r.Start, r.End()) }

// CheckSameNode reports an error if the range straddles a node boundary,
// which would make its ownership ambiguous.
func (r Range) CheckSameNode() error {
	if r.Size == 0 {
		return nil
	}
	last := r.Start + Phys(r.Size-1)
	if r.Start.Node() != last.Node() {
		return fmt.Errorf("addr: range %v straddles nodes %d and %d", r, r.Start.Node(), last.Node())
	}
	return nil
}

// NodeBase returns the first cluster-map address owned by the node, i.e.
// the address other nodes use for the node's local address 0.
func NodeBase(n NodeID) Phys {
	if n == 0 || n > MaxNode {
		panic(fmt.Sprintf("addr: invalid node id %d", n))
	}
	return Phys(uint64(n) << LocalBits)
}
