package addr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperExamples(t *testing.T) {
	// The worked example of Section III-B: node 3 reserves local range
	// starting at 0x000041000000 and returns it prefixed with node 3.
	local := Phys(0x000041000000)
	if !local.IsLocal() {
		t.Fatalf("%v should be local", local)
	}
	prefixed := local.WithNode(3)
	if got := prefixed.Node(); got != 3 {
		t.Errorf("Node() = %d, want 3", got)
	}
	if got := prefixed.Local(); got != local {
		t.Errorf("Local() = %v, want %v", got, local)
	}
	// Node 3's base: 3 << 34.
	if got := NodeBase(3); got != Phys(3)<<34 {
		t.Errorf("NodeBase(3) = %v, want %v", got, Phys(3)<<34)
	}
}

func TestPrefixRoundTripProperty(t *testing.T) {
	f := func(raw uint64, node uint16) bool {
		local := Phys(raw & (LocalSpace - 1))
		n := NodeID(node%MaxNode) + 1 // valid ids are 1..MaxNode
		p := local.WithNode(n)
		return p.Node() == n && p.Local() == local && !p.IsLocal() && p.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithNodePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("double prefix", func() { Phys(0x1).WithNode(2).WithNode(3) })
	mustPanic("node 0", func() { Phys(0x1).WithNode(0) })
	mustPanic("NodeBase(0)", func() { NodeBase(0) })
}

func TestLoopback(t *testing.T) {
	a := Phys(0x1000).WithNode(5)
	if !a.Loopback(5) {
		t.Error("address prefixed with self should be loopback")
	}
	if a.Loopback(6) {
		t.Error("address prefixed with other node is not loopback")
	}
	if Phys(0x1000).Loopback(5) {
		t.Error("local address is never loopback")
	}
	if got := a.Canonical(5); got != Phys(0x1000) {
		t.Errorf("Canonical(self) = %v, want local form", got)
	}
	if got := a.Canonical(6); got != a {
		t.Errorf("Canonical(other) = %v, want unchanged", got)
	}
}

func TestCanonicalEquivalenceProperty(t *testing.T) {
	// The loopback alias and the local address name the same cell.
	f := func(raw uint64, node uint16) bool {
		local := Phys(raw & (LocalSpace - 1))
		n := NodeID(node%MaxNode) + 1
		return local.WithNode(n).Canonical(n) == local.Canonical(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlignmentHelpers(t *testing.T) {
	a := Phys(0x12345)
	if got := a.Line(64); got != Phys(0x12340) {
		t.Errorf("Line = %v", got)
	}
	if got := a.Page(4096); got != Phys(0x12000) {
		t.Errorf("Page = %v", got)
	}
	// Alignment must not disturb the node prefix.
	p := Phys(0x12345).WithNode(7)
	if got := p.Page(4096).Node(); got != 7 {
		t.Errorf("Page dropped node prefix: node = %d", got)
	}
}

func TestRange(t *testing.T) {
	r := Range{Start: 0x1000, Size: 0x1000}
	if !r.Contains(0x1000) || !r.Contains(0x1fff) {
		t.Error("range should contain its endpoints-1")
	}
	if r.Contains(0x2000) || r.Contains(0xfff) {
		t.Error("range should exclude outside addresses")
	}
	o := Range{Start: 0x1800, Size: 0x1000}
	if !r.Overlaps(o) || !o.Overlaps(r) {
		t.Error("overlapping ranges reported disjoint")
	}
	d := Range{Start: 0x2000, Size: 0x1000}
	if r.Overlaps(d) {
		t.Error("adjacent ranges reported overlapping")
	}
	if (Range{Start: 0x1000, Size: 0}).Overlaps(r) {
		t.Error("empty range overlaps nothing")
	}
}

func TestRangeSameNode(t *testing.T) {
	ok := Range{Start: NodeBase(2), Size: 1 << 20}
	if err := ok.CheckSameNode(); err != nil {
		t.Errorf("single-node range rejected: %v", err)
	}
	bad := Range{Start: NodeBase(2) + Phys(LocalSpace) - 1, Size: 2}
	if err := bad.CheckSameNode(); err == nil {
		t.Error("straddling range accepted")
	}
}

func TestStringFormat(t *testing.T) {
	if got := Phys(0xC41000000B0).String(); got != "0x0c41000000b0" {
		t.Errorf("String() = %q", got)
	}
}

func TestMemMapRouting(t *testing.T) {
	m, err := NewMemMap(1, 16, 16<<30)
	if err != nil {
		t.Fatal(err)
	}
	// Local memory -> local MC.
	if tgt, err := m.Route(Phys(0x1000)); err != nil || tgt != TargetLocalMC {
		t.Errorf("local route = %v, %v", tgt, err)
	}
	// Prefixed address -> RMC (the paper's 0x000C4100000B0 targets node 3).
	if tgt, err := m.Route(Phys(0x000C41000000B0 >> 4)); err == nil && tgt != TargetRMC {
		t.Errorf("prefixed route = %v", tgt)
	}
	a := Phys(0x41000000).WithNode(3)
	if tgt, err := m.Route(a); err != nil || tgt != TargetRMC {
		t.Errorf("route(%v) = %v, %v; want RMC", a, tgt, err)
	}
	// Node outside the cluster -> error.
	if _, err := m.Route(Phys(0x100).WithNode(17)); err == nil {
		t.Error("route to node 17 in a 16-node cluster accepted")
	}
	// Beyond remote node's installed memory: only reachable with
	// memEach < LocalSpace; 16 GB == LocalSpace so skip here.
}

func TestMemMapSmallMemory(t *testing.T) {
	m, err := NewMemMap(2, 4, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Route(Phys(2 << 30).WithNode(3)); err == nil {
		t.Error("route beyond remote installed memory accepted")
	}
	if _, err := m.Route(Phys(2 << 30)); err == nil {
		t.Error("route beyond installed local memory accepted")
	}
}

func TestMemMapEntries(t *testing.T) {
	m, err := NewMemMap(2, 4, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	entries := m.Entries()
	if len(entries) != 5 { // local + 4 RMC aliases
		t.Fatalf("got %d entries, want 5", len(entries))
	}
	if entries[0].Target != TargetLocalMC {
		t.Errorf("first entry should be local memory, got %v", entries[0].Target)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Target != TargetRMC {
			t.Errorf("entry %d target = %v, want RMC", i, entries[i].Target)
		}
		if entries[i].Range.Start <= entries[i-1].Range.Start {
			t.Errorf("entries not sorted at %d", i)
		}
	}
	if !strings.Contains(m.String(), "loopback alias") {
		t.Error("rendered map should flag the loopback alias")
	}
}

func TestMemMapErrors(t *testing.T) {
	if _, err := NewMemMap(0, 4, 1<<30); err == nil {
		t.Error("node id 0 accepted")
	}
	if _, err := NewMemMap(5, 4, 1<<30); err == nil {
		t.Error("node id outside cluster accepted")
	}
	if _, err := NewMemMap(1, 4, 0); err == nil {
		t.Error("zero memory accepted")
	}
	if _, err := NewMemMap(1, 4, LocalSpace+1); err == nil {
		t.Error("memory exceeding local space accepted")
	}
	if _, err := NewMemMap(1, MaxNode+1, 1<<30); err == nil {
		t.Error("too-large cluster accepted")
	}
}
