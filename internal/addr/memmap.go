package addr

import (
	"fmt"
	"sort"
	"strings"
)

// MapEntry describes one segment of a node's view of the cluster memory
// map (Figure 3): an address range and the component that claims it.
type MapEntry struct {
	Range  Range
	Target Target
	Owner  NodeID // owning node; 0 for local segments
	Note   string
}

// Target identifies the component a memory operation is forwarded to.
type Target int

// Routing targets in a node's memory map.
const (
	// TargetLocalMC routes to an on-board memory controller.
	TargetLocalMC Target = iota
	// TargetRMC routes to the Remote Memory Controller.
	TargetRMC
)

func (t Target) String() string {
	switch t {
	case TargetLocalMC:
		return "local-MC"
	case TargetRMC:
		return "RMC"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// MemMap is one node's conception of the physical memory map. Every node
// in the cluster has the identical map (that is the point of reserving
// node identifier 0): local memory at the bottom, then one segment per
// node of the cluster claimed by the RMC.
type MemMap struct {
	self     NodeID
	localMem uint64
	nodes    int
	memEach  uint64
}

// NewMemMap builds the map seen by node self in a cluster of nodes nodes
// carrying memEach bytes of local memory each.
func NewMemMap(self NodeID, nodes int, memEach uint64) (*MemMap, error) {
	if self == 0 || int(self) > nodes {
		return nil, fmt.Errorf("addr: node id %d outside cluster of %d nodes", self, nodes)
	}
	if nodes < 1 || nodes > MaxNode {
		return nil, fmt.Errorf("addr: cluster of %d nodes not representable (1..%d)", nodes, MaxNode)
	}
	if memEach == 0 || memEach > LocalSpace {
		return nil, fmt.Errorf("addr: %d bytes per node exceeds the %d-byte local space", memEach, LocalSpace)
	}
	return &MemMap{self: self, localMem: memEach, nodes: nodes, memEach: memEach}, nil
}

// Self returns the identifier of the node whose view this is.
func (m *MemMap) Self() NodeID { return m.self }

// Route returns the target that claims the address in this node's map,
// mirroring the BAR comparison performed by the processors: a zero prefix
// selects a local memory controller, anything else the RMC.
func (m *MemMap) Route(a Phys) (Target, error) {
	if !a.Valid() {
		return 0, fmt.Errorf("addr: %v exceeds the physical address space", a)
	}
	if a.IsLocal() {
		if uint64(a) >= m.localMem {
			return 0, fmt.Errorf("addr: local address %v beyond installed memory (%d bytes)", a, m.localMem)
		}
		return TargetLocalMC, nil
	}
	if int(a.Node()) > m.nodes {
		return 0, fmt.Errorf("addr: %v names node %d outside the %d-node cluster", a, a.Node(), m.nodes)
	}
	if uint64(a.Local()) >= m.memEach {
		return 0, fmt.Errorf("addr: %v beyond node %d's installed memory", a, a.Node())
	}
	return TargetRMC, nil
}

// Entries lists the map segments in ascending address order: the local
// segment followed by one RMC segment per cluster node (including the
// loopback alias of the local node, which exists in the map but is never
// used in practice).
func (m *MemMap) Entries() []MapEntry {
	entries := []MapEntry{{
		Range:  Range{Start: 0, Size: m.localMem},
		Target: TargetLocalMC,
		Owner:  0,
		Note:   "local memory",
	}}
	for n := NodeID(1); int(n) <= m.nodes; n++ {
		note := fmt.Sprintf("node %d via RMC", n)
		if n == m.self {
			note += " (loopback alias, unused)"
		}
		entries = append(entries, MapEntry{
			Range:  Range{Start: NodeBase(n), Size: m.memEach},
			Target: TargetRMC,
			Owner:  n,
			Note:   note,
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Range.Start < entries[j].Range.Start })
	return entries
}

// String renders the map in the style of Figure 3.
func (m *MemMap) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "memory map as seen by node %d:\n", m.self)
	for _, e := range m.Entries() {
		fmt.Fprintf(&b, "  %v -> %-8v %s\n", e.Range, e.Target, e.Note)
	}
	return b.String()
}
