// Package rmalloc is the analogue of the paper's interposed malloc/free
// library: applications allocate dynamic memory normally, the library
// intercepts the reservation, backs it with (possibly remote) physical
// memory, and returns an ordinary pointer — after which loads and stores
// are plain memory instructions with no software on the path.
//
// The heap grows by acquiring page-aligned physical chunks from a
// Backing (the core package supplies one that allocates locally while
// local memory lasts, then borrows remotely via the reservation
// protocol), maps them into the process address space, and carves user
// allocations out of a virtual first-fit free list. Allocation metadata
// lives out of band: simulated application data never shares bytes with
// allocator bookkeeping.
package rmalloc

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/params"
	"repro/internal/vm"
)

// Backing supplies physical chunks for heap growth.
type Backing interface {
	// AcquireChunk obtains a page-aligned contiguous physical extent of
	// at least size bytes; the range may carry a node prefix.
	AcquireChunk(size uint64) (addr.Range, error)
	// ReleaseChunk returns an extent acquired earlier.
	ReleaseChunk(r addr.Range) error
}

// Align is the allocation alignment malloc guarantees.
const Align = 16

// DefaultChunk is the default heap-growth granularity.
const DefaultChunk = 64 << 20

// vrange is a virtual extent.
type vrange struct {
	start vm.Virt
	size  uint64
}

func (v vrange) end() vm.Virt { return v.start + vm.Virt(v.size) }

// Heap is one process's interposed heap.
type Heap struct {
	as        *vm.AddressSpace
	backing   Backing
	chunkSize uint64

	free   []vrange               // sorted by start, coalesced
	live   map[vm.Virt]uint64     // user pointer -> size
	chunks map[vm.Virt]addr.Range // arena base -> physical backing

	// Allocs, Frees, and Grows count operations; Used is live user bytes.
	Allocs, Frees, Grows uint64
	Used                 uint64
}

// NewHeap builds a heap over the address space. chunkSize 0 selects
// DefaultChunk.
func NewHeap(as *vm.AddressSpace, backing Backing, chunkSize uint64) (*Heap, error) {
	if as == nil || backing == nil {
		return nil, fmt.Errorf("rmalloc: nil address space or backing")
	}
	if chunkSize == 0 {
		chunkSize = DefaultChunk
	}
	if chunkSize%params.PageSize != 0 {
		return nil, fmt.Errorf("rmalloc: chunk size %d not page-aligned", chunkSize)
	}
	return &Heap{
		as:        as,
		backing:   backing,
		chunkSize: chunkSize,
		live:      make(map[vm.Virt]uint64),
		chunks:    make(map[vm.Virt]addr.Range),
	}, nil
}

// Malloc allocates size bytes and returns the user pointer.
func (h *Heap) Malloc(size uint64) (vm.Virt, error) {
	if size == 0 {
		return 0, fmt.Errorf("rmalloc: zero-size malloc")
	}
	size = (size + Align - 1) &^ uint64(Align-1)
	ptr, ok := h.carve(size)
	if !ok {
		if err := h.grow(size); err != nil {
			return 0, err
		}
		ptr, ok = h.carve(size)
		if !ok {
			return 0, fmt.Errorf("rmalloc: internal: grow did not make %d bytes available", size)
		}
	}
	h.live[ptr] = size
	h.Allocs++
	h.Used += size
	return ptr, nil
}

// Free releases a pointer returned by Malloc.
func (h *Heap) Free(ptr vm.Virt) error {
	size, ok := h.live[ptr]
	if !ok {
		return fmt.Errorf("rmalloc: free of unknown pointer %#x", uint64(ptr))
	}
	delete(h.live, ptr)
	h.insertFree(vrange{start: ptr, size: size})
	h.Frees++
	h.Used -= size
	return nil
}

// SizeOf returns the allocation size of a live pointer.
func (h *Heap) SizeOf(ptr vm.Virt) (uint64, error) {
	size, ok := h.live[ptr]
	if !ok {
		return 0, fmt.Errorf("rmalloc: unknown pointer %#x", uint64(ptr))
	}
	return size, nil
}

// carve removes a first-fit block from the free list.
func (h *Heap) carve(size uint64) (vm.Virt, bool) {
	for i, f := range h.free {
		if f.size < size {
			continue
		}
		ptr := f.start
		if f.size == size {
			h.free = append(h.free[:i], h.free[i+1:]...)
		} else {
			h.free[i] = vrange{start: f.start + vm.Virt(size), size: f.size - size}
		}
		return ptr, true
	}
	return 0, false
}

// grow acquires a new arena big enough for size. The arena is virtually
// contiguous but may be assembled from several physical chunks: a single
// allocation larger than any one donor's free pool (say 10 GB on a
// cluster of 8 GB pools) is backed by reservations on several nodes,
// mapped back to back — physical contiguity is a per-chunk property,
// virtual contiguity is the allocator's.
func (h *Heap) grow(size uint64) error {
	want := h.chunkSize
	if size > want {
		want = size
	}
	want = (want + params.PageSize - 1) &^ uint64(params.PageSize-1)

	// Gather chunks totaling want, halving the piece size on failure.
	var pieces []addr.Range
	release := func() {
		for _, p := range pieces {
			// Best effort: a failed grow must not leak reservations.
			if err := h.backing.ReleaseChunk(p); err != nil {
				panic(fmt.Sprintf("rmalloc: rollback release failed: %v", err))
			}
		}
	}
	remaining := want
	piece := want
	for remaining > 0 {
		ask := piece
		if remaining < ask {
			ask = remaining
		}
		phys, err := h.backing.AcquireChunk(ask)
		if err != nil {
			if piece <= params.PageSize {
				release()
				return fmt.Errorf("rmalloc: heap growth of %d bytes failed (%d still unbacked): %w", want, remaining, err)
			}
			piece = (piece/2 + params.PageSize - 1) &^ uint64(params.PageSize-1)
			continue
		}
		pieces = append(pieces, phys)
		remaining -= phys.Size
	}

	base, err := h.as.ReserveVirtual(want)
	if err != nil {
		release()
		return err
	}
	// Remote frames are pinned by construction of the reservation
	// protocol; local ones need no pin in this model, but marking them
	// uniformly keeps the allocator's pages out of any swap experiment.
	va := base
	for _, phys := range pieces {
		if err := h.as.MapRange(va, phys.Start, vm.PagesFor(phys.Size), true); err != nil {
			release()
			return err
		}
		h.chunks[va] = phys
		va += vm.Virt(phys.Size)
	}
	h.insertFree(vrange{start: base, size: want})
	h.Grows++
	return nil
}

// insertFree adds a block to the free list, coalescing neighbors.
func (h *Heap) insertFree(v vrange) {
	h.free = append(h.free, v)
	sort.Slice(h.free, func(i, j int) bool { return h.free[i].start < h.free[j].start })
	out := h.free[:0]
	for _, f := range h.free {
		if n := len(out); n > 0 && out[n-1].end() == f.start {
			out[n-1].size += f.size
		} else {
			out = append(out, f)
		}
	}
	h.free = out
}

// Trim releases arenas no live allocation touches back to the backing —
// the hot-remove half of the paper's dynamic regions: memory borrowed
// for a phase's peak goes back to its donor's pool when the phase ends.
// It returns the bytes released.
func (h *Heap) Trim() (uint64, error) {
	var released uint64
	for base, phys := range h.chunks {
		arena := vrange{start: base, size: phys.Size}
		if !h.fullyFree(arena) {
			continue
		}
		h.removeFree(arena)
		if err := h.as.Unmap(base, vm.PagesFor(phys.Size)); err != nil {
			return released, err
		}
		if err := h.backing.ReleaseChunk(phys); err != nil {
			return released, err
		}
		delete(h.chunks, base)
		released += phys.Size
	}
	return released, nil
}

// fullyFree reports whether the arena lies entirely inside one free
// block (no live allocation touches it).
func (h *Heap) fullyFree(arena vrange) bool {
	for _, f := range h.free {
		if f.start <= arena.start && arena.end() <= f.end() {
			return true
		}
	}
	return false
}

// removeFree carves the arena out of the free list.
func (h *Heap) removeFree(arena vrange) {
	out := h.free[:0]
	for _, f := range h.free {
		if f.start <= arena.start && arena.end() <= f.end() {
			if f.start < arena.start {
				out = append(out, vrange{start: f.start, size: uint64(arena.start - f.start)})
			}
			if arena.end() < f.end() {
				out = append(out, vrange{start: arena.end(), size: uint64(f.end() - arena.end())})
			}
			continue
		}
		out = append(out, f)
	}
	h.free = out
}

// Chunks returns a copy of the arena map: virtual base -> physical
// backing extent. The core layer uses it to build placement-aware
// latency models of a region.
func (h *Heap) Chunks() map[vm.Virt]addr.Range {
	out := make(map[vm.Virt]addr.Range, len(h.chunks))
	for k, v := range h.chunks {
		out[k] = v
	}
	return out
}

// ArenaBytes returns the total physical bytes backing the heap.
func (h *Heap) ArenaBytes() uint64 {
	var total uint64
	for _, c := range h.chunks {
		total += c.Size
	}
	return total
}

// LiveAllocs returns the number of outstanding allocations.
func (h *Heap) LiveAllocs() int { return len(h.live) }

// Release tears the heap down, returning every chunk to the backing.
// Outstanding allocations are an error: the caller leaks intentionally
// or frees first.
func (h *Heap) Release() error {
	if len(h.live) > 0 {
		return fmt.Errorf("rmalloc: %d live allocations at release", len(h.live))
	}
	for base, phys := range h.chunks {
		if err := h.as.Unmap(base, vm.PagesFor(phys.Size)); err != nil {
			return err
		}
		if err := h.backing.ReleaseChunk(phys); err != nil {
			return err
		}
		delete(h.chunks, base)
	}
	h.free = nil
	return nil
}
