package rmalloc

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/params"
	"repro/internal/vm"
)

// fakeBacking hands out extents from a bump pointer, optionally failing
// after a byte budget (to test exhaustion), and tracks releases.
type fakeBacking struct {
	next     addr.Phys
	budget   uint64
	used     uint64
	acquired map[addr.Phys]uint64
	releases int
}

func newFakeBacking(budget uint64) *fakeBacking {
	return &fakeBacking{budget: budget, acquired: map[addr.Phys]uint64{}}
}

func (b *fakeBacking) AcquireChunk(size uint64) (addr.Range, error) {
	if b.used+size > b.budget {
		return addr.Range{}, fmt.Errorf("backing exhausted")
	}
	r := addr.Range{Start: b.next.WithNode(3), Size: size}
	b.next += addr.Phys(size)
	b.used += size
	b.acquired[r.Start] = size
	return r, nil
}

func (b *fakeBacking) ReleaseChunk(r addr.Range) error {
	if b.acquired[r.Start] != r.Size {
		return fmt.Errorf("unknown chunk %v", r)
	}
	delete(b.acquired, r.Start)
	b.releases++
	return nil
}

func newHeap(t *testing.T, budget uint64, chunk uint64) (*Heap, *fakeBacking, *vm.AddressSpace) {
	t.Helper()
	as := vm.NewAddressSpace()
	b := newFakeBacking(budget)
	h, err := NewHeap(as, b, chunk)
	if err != nil {
		t.Fatal(err)
	}
	return h, b, as
}

func TestNewHeapValidation(t *testing.T) {
	as := vm.NewAddressSpace()
	if _, err := NewHeap(nil, newFakeBacking(1<<20), 0); err == nil {
		t.Error("nil address space accepted")
	}
	if _, err := NewHeap(as, nil, 0); err == nil {
		t.Error("nil backing accepted")
	}
	if _, err := NewHeap(as, newFakeBacking(1<<20), params.PageSize+1); err == nil {
		t.Error("unaligned chunk size accepted")
	}
}

func TestMallocMapsMemory(t *testing.T) {
	h, b, as := newHeap(t, 1<<30, 1<<20)
	ptr, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	// The pointer translates to a prefixed physical address: remote
	// memory behind an ordinary pointer.
	pa, err := as.Translate(ptr)
	if err != nil {
		t.Fatalf("malloc'd pointer does not translate: %v", err)
	}
	if pa.Node() != 3 {
		t.Errorf("backing node = %d", pa.Node())
	}
	if h.Grows != 1 || b.used != 1<<20 {
		t.Errorf("grow accounting: Grows=%d used=%d", h.Grows, b.used)
	}
	if sz, err := h.SizeOf(ptr); err != nil || sz != 112 { // rounded to 16
		t.Errorf("SizeOf = %d, %v", sz, err)
	}
	if h.Used != 112 || h.LiveAllocs() != 1 {
		t.Errorf("Used=%d LiveAllocs=%d", h.Used, h.LiveAllocs())
	}
}

func TestMallocZeroFails(t *testing.T) {
	h, _, _ := newHeap(t, 1<<30, 0)
	if _, err := h.Malloc(0); err == nil {
		t.Error("zero malloc accepted")
	}
}

func TestChunkReuseAcrossAllocs(t *testing.T) {
	h, b, _ := newHeap(t, 1<<30, 1<<20)
	for i := 0; i < 100; i++ {
		if _, err := h.Malloc(1000); err != nil {
			t.Fatal(err)
		}
	}
	// 100 KB of allocations fit one 1 MB chunk.
	if h.Grows != 1 || b.used != 1<<20 {
		t.Errorf("chunk not reused: Grows=%d", h.Grows)
	}
}

func TestLargeAllocationGetsOwnChunk(t *testing.T) {
	h, _, _ := newHeap(t, 1<<30, 1<<20)
	ptr, err := h.Malloc(5 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if h.ArenaBytes() < 5<<20 {
		t.Errorf("ArenaBytes = %d", h.ArenaBytes())
	}
	if err := h.Free(ptr); err != nil {
		t.Fatal(err)
	}
}

func TestFreeAndReuse(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20, 1<<20) // budget: exactly one chunk
	a, err := h.Malloc(512 << 10)
	if err != nil {
		t.Fatal(err)
	}
	bptr, err := h.Malloc(512 << 10)
	if err != nil {
		t.Fatal(err)
	}
	// Heap is full; further growth would exceed the budget.
	if _, err := h.Malloc(64); err == nil {
		t.Error("allocation beyond budget succeeded")
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	// Freed space is reused without growing.
	c, err := h.Malloc(512 << 10)
	if err != nil {
		t.Fatalf("free space not reused: %v", err)
	}
	if c != a {
		t.Errorf("expected first-fit reuse of %#x, got %#x", uint64(a), uint64(c))
	}
	_ = bptr
}

func TestDoubleFree(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20, 1<<20)
	ptr, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(ptr); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(ptr); err == nil {
		t.Error("double free accepted")
	}
	if err := h.Free(vm.Virt(0xdead0)); err == nil {
		t.Error("wild free accepted")
	}
}

func TestCoalescingEnablesBigAlloc(t *testing.T) {
	h, _, _ := newHeap(t, 1<<20, 1<<20)
	var ptrs []vm.Virt
	for i := 0; i < 4; i++ {
		p, err := h.Malloc(256 << 10)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// All four quarters coalesce back into one megabyte.
	if _, err := h.Malloc(1 << 20); err != nil {
		t.Errorf("coalescing failed: %v", err)
	}
}

func TestRelease(t *testing.T) {
	h, b, as := newHeap(t, 1<<30, 1<<20)
	p, _ := h.Malloc(64)
	if err := h.Release(); err == nil {
		t.Error("release with live allocations accepted")
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if b.releases != 1 || len(b.acquired) != 0 {
		t.Errorf("chunks not returned: releases=%d", b.releases)
	}
	if as.MappedPages() != 0 {
		t.Errorf("release left %d pages mapped", as.MappedPages())
	}
}

// TestHeapInvariantsProperty drives random malloc/free and checks that
// live allocations never overlap and Used accounting is exact.
func TestHeapInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		h, _, _ := newHeapQuick()
		type allocation struct {
			ptr  vm.Virt
			size uint64
		}
		var live []allocation
		var used uint64
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				size := uint64(op%2048) + 1
				ptr, err := h.Malloc(size)
				if err != nil {
					continue
				}
				rounded := (size + Align - 1) &^ uint64(Align-1)
				for _, l := range live {
					if ptr < l.ptr+vm.Virt(l.size) && l.ptr < ptr+vm.Virt(rounded) {
						return false // overlap
					}
				}
				live = append(live, allocation{ptr, rounded})
				used += rounded
			} else {
				i := int(op) % len(live)
				if err := h.Free(live[i].ptr); err != nil {
					return false
				}
				used -= live[i].size
				live = append(live[:i], live[i+1:]...)
			}
			if h.Used != used || h.LiveAllocs() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newHeapQuick() (*Heap, *fakeBacking, *vm.AddressSpace) {
	as := vm.NewAddressSpace()
	b := newFakeBacking(16 << 20)
	h, err := NewHeap(as, b, 1<<20)
	if err != nil {
		panic(err)
	}
	return h, b, as
}

func TestTrimReleasesIdleArenas(t *testing.T) {
	h, b, as := newHeap(t, 16<<20, 1<<20)
	// Two arenas: one stays live, one becomes fully free.
	p1, err := h.Malloc(512 << 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := h.Malloc(900 << 10) // forces a second arena
	if err != nil {
		t.Fatal(err)
	}
	if h.Grows != 2 {
		t.Fatalf("expected 2 arenas, got %d", h.Grows)
	}
	if err := h.Free(p2); err != nil {
		t.Fatal(err)
	}
	released, err := h.Trim()
	if err != nil {
		t.Fatal(err)
	}
	if released != 1<<20 {
		t.Errorf("Trim released %d, want one 1 MiB arena", released)
	}
	if b.releases != 1 {
		t.Errorf("backing saw %d releases", b.releases)
	}
	// The live arena survives; its allocation still translates.
	if _, err := as.Translate(p1); err != nil {
		t.Errorf("live allocation unmapped by Trim: %v", err)
	}
	// A partially used arena is never trimmed.
	released, err = h.Trim()
	if err != nil || released != 0 {
		t.Errorf("second Trim = %d, %v", released, err)
	}
	// The heap still works after trimming.
	if _, err := h.Malloc(256 << 10); err != nil {
		t.Fatal(err)
	}
}

func TestTrimThenReleaseCleanly(t *testing.T) {
	h, b, _ := newHeap(t, 8<<20, 1<<20)
	ptr, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(ptr); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Trim(); err != nil {
		t.Fatal(err)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if len(b.acquired) != 0 {
		t.Error("chunks leaked")
	}
}
