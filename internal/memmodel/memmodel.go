// Package memmodel is the macro evaluation layer: O(1)-per-access
// latency models for the three memory configurations the paper compares
// — all-local memory, the RMC's remote memory (constant line-granular
// latency, Equation 2), and remote/disk swap (page-granular faults over
// an LRU residency, Equation 1). Workload-scale experiments (the b-tree
// study and the PARSEC-class kernels) run here, where single-threaded
// clients make queueing irrelevant; the micro layer (packages sim, rmc,
// mesh) covers the contention studies and is cross-validated against
// this one in the experiments package.
package memmodel

import (
	"fmt"

	"repro/internal/params"
	"repro/internal/swap"
)

// Accessor prices one memory access.
type Accessor interface {
	// Access returns the cost of one access at byte address a.
	Access(a uint64, write bool) params.Duration
	// Name identifies the configuration in figures.
	Name() string
}

// Local models node-local DRAM: every access costs the local latency.
// (The paper's equations charge L_local per access; processor caches are
// deliberately outside the equation on both sides of the comparison.)
type Local struct {
	P params.Params
}

// Access implements Accessor.
func (l Local) Access(uint64, bool) params.Duration { return l.P.DRAMLatency }

// Name implements Accessor.
func (l Local) Name() string { return "local memory" }

// Remote models the prototype's remote memory, Equation (2): every
// access costs the constant line round trip at the given hop distance —
// no locality sensitivity at all, which is exactly its advantage over
// swap under scattered access patterns.
type Remote struct {
	P    params.Params
	Hops int
}

// Access implements Accessor.
func (r Remote) Access(uint64, bool) params.Duration { return r.P.RemoteRoundTrip(r.Hops) }

// Name implements Accessor.
func (r Remote) Name() string { return "remote memory" }

// Swap models paging, Equation (1): resident pages cost local latency,
// faults cost the OS trap plus the device transfer, dirty evictions pay
// a writeback.
type Swap struct {
	p     params.Params
	dev   swap.Device
	cache *swap.PageCache
	name  string
	// Device costs are constant per device; precomputing them keeps the
	// pricing loop free of interface calls.
	faultCost params.Duration // trap overhead + device fault transfer
	wbCost    params.Duration
	// FaultTime accumulates time spent in faults, for breakdowns.
	FaultTime params.Duration
}

// NewSwap builds a swap accessor with the given resident-page budget.
func NewSwap(p params.Params, dev swap.Device, residentPages int) (*Swap, error) {
	c, err := swap.NewPageCache(residentPages)
	if err != nil {
		return nil, err
	}
	return &Swap{
		p: p, dev: dev, cache: c, name: dev.Name(),
		faultCost: p.SwapTrapOverhead + dev.FaultCost(),
		wbCost:    dev.WritebackCost(),
	}, nil
}

// Access implements Accessor.
func (s *Swap) Access(a uint64, write bool) params.Duration {
	return s.access1(a, write)
}

// access1 prices one access through the concrete type — the
// devirtualized call the batched compositions use.
func (s *Swap) access1(a uint64, write bool) params.Duration {
	res := s.cache.Touch(a/params.PageSize, write)
	if res.Hit {
		return s.p.DRAMLatency
	}
	cost := s.faultCost
	if res.EvictedDirty {
		cost += s.wbCost
	}
	s.FaultTime += cost
	return cost + s.p.DRAMLatency
}

// Name implements Accessor.
func (s *Swap) Name() string { return s.name }

// Cache exposes the residency set for inspection.
func (s *Swap) Cache() *swap.PageCache { return s.cache }

// Meter wraps an accessor and accumulates totals — the measured side of
// EXPERIMENTS.md's paper-vs-measured records.
type Meter struct {
	Acc Accessor
	// Accesses counts accesses; Time accumulates their cost.
	Accesses uint64
	Time     params.Duration
}

// NewMeter wraps an accessor.
func NewMeter(acc Accessor) *Meter {
	if acc == nil {
		panic("memmodel: NewMeter(nil)")
	}
	return &Meter{Acc: acc}
}

// Access forwards to the wrapped accessor and accumulates.
func (m *Meter) Access(a uint64, write bool) params.Duration {
	d := m.Acc.Access(a, write)
	m.Accesses++
	m.Time += d
	return d
}

// Name implements Accessor.
func (m *Meter) Name() string { return m.Acc.Name() }

// MeanAccess returns the average access cost so far.
func (m *Meter) MeanAccess() float64 {
	if m.Accesses == 0 {
		return 0
	}
	return float64(m.Time) / float64(m.Accesses)
}

// Reset zeroes the meter (not the wrapped accessor's state).
func (m *Meter) Reset() { m.Accesses, m.Time = 0, 0 }

// Config names a standard configuration for experiment drivers.
type Config int

// Standard configurations of Figure 11.
const (
	// ConfigLocal is the 128 GB-in-one-box ideal.
	ConfigLocal Config = iota
	// ConfigRemote is the prototype.
	ConfigRemote
	// ConfigRemoteSwap is the remote-paging comparator.
	ConfigRemoteSwap
	// ConfigDiskSwap is classic disk paging.
	ConfigDiskSwap
)

// Build constructs the accessor for a standard configuration at the
// given hop distance and residency budget.
func Build(cfg Config, p params.Params, hops, residentPages int) (Accessor, error) {
	switch cfg {
	case ConfigLocal:
		return Local{P: p}, nil
	case ConfigRemote:
		return Remote{P: p, Hops: hops}, nil
	case ConfigRemoteSwap:
		return NewSwap(p, swap.RemoteDevice{P: p, Hops: hops}, residentPages)
	case ConfigDiskSwap:
		return NewSwap(p, swap.DiskDevice{P: p}, residentPages)
	default:
		return nil, fmt.Errorf("memmodel: unknown config %d", cfg)
	}
}

// String names the configuration.
func (c Config) String() string {
	switch c {
	case ConfigLocal:
		return "local memory"
	case ConfigRemote:
		return "remote memory"
	case ConfigRemoteSwap:
		return "remote swap"
	case ConfigDiskSwap:
		return "disk swap"
	default:
		return fmt.Sprintf("Config(%d)", int(c))
	}
}
