package memmodel

import (
	"testing"

	"repro/internal/params"
)

func TestBulkModelAmortization(t *testing.T) {
	p := params.Default()
	m, err := NewBulkModel(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	one := m.BulkRead(1)
	sixtyFour := m.BulkRead(64)
	if one <= 0 || sixtyFour <= one {
		t.Fatalf("BulkRead(1)=%d, BulkRead(64)=%d; want positive and monotone", one, sixtyFour)
	}
	// The redesign's whole point: per-line cost collapses with burst size.
	if perLine := sixtyFour / 64; perLine*4 >= one {
		t.Errorf("per-line cost in a 64-line burst = %d ps vs %d ps single; want at least 4x amortization", perLine, one)
	}
	// Against the analytic scalar model: one burst of 64 lines beats 64
	// dependent analytic round trips.
	scalar := params.Duration(64) * p.RemoteRoundTrip(1)
	if sixtyFour*4 >= scalar {
		t.Errorf("simulated burst %d ps vs analytic 64 round trips %d ps; want at least 4x cheaper", sixtyFour, scalar)
	}
}

func TestBulkModelCachesAndScales(t *testing.T) {
	p := params.Default()
	m, err := NewBulkModel(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := m.BulkRead(128)
	b := m.BulkRead(128)
	if a != b {
		t.Errorf("cached price differs: %d vs %d", a, b)
	}
	near, _ := NewBulkModel(p, 1)
	if near.BulkRead(128) >= m.BulkRead(128) {
		t.Error("price not monotone in hop distance")
	}
	// Writes price through the same machinery.
	if m.BulkWrite(64) <= 0 {
		t.Error("write burst priced at zero")
	}
	// Transfers past one burst's geometry still price (split bursts).
	big := m.BulkRead(p.BurstMaxLines() + 64)
	if big <= m.BulkRead(p.BurstMaxLines()) {
		t.Error("multi-burst transfer not dearer than one burst")
	}
}

func TestBulkModelLocal(t *testing.T) {
	p := params.Default()
	m, err := NewBulkModel(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Local bursts pipeline behind bank occupancy: 64 lines cost at
	// least 64 occupancy slots, far below 64 full DRAM latencies.
	c := m.BulkRead(64)
	if c < 64*params.Duration(p.DRAMOccupancy) {
		t.Errorf("local 64-line burst = %d ps, below the bank's occupancy floor", c)
	}
	if c >= 64*params.Duration(p.DRAMLatency) {
		t.Errorf("local 64-line burst = %d ps; lines did not pipeline", c)
	}
	if m.Name() != "bulk local" {
		t.Errorf("Name = %q", m.Name())
	}
	if _, err := NewBulkModel(p, -1); err == nil {
		t.Error("negative hops accepted")
	}
}
