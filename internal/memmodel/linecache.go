package memmodel

import (
	"fmt"

	"repro/internal/params"
	"repro/internal/swap"
)

// LineCached wraps an accessor with a write-back LRU line cache,
// modeling the processor cache in front of whichever memory backs the
// data. The prototype configures even RMC-mapped ranges write-back
// cacheable (paper Section IV-B), so cache-friendly workloads touch
// remote memory only on line fills — the effect that keeps blackscholes
// and raytrace close to local performance in Figure 11.
type LineCached struct {
	inner Accessor
	lines *swap.PageCache // reused as a line-granule LRU
	p     params.Params

	// Fills counts line fills from the backing memory.
	Fills uint64
}

// DefaultCacheLines sizes the model like a 512 KiB L2 of 64 B lines.
const DefaultCacheLines = 8192

// NewLineCached wraps inner with a cache of the given line count.
func NewLineCached(inner Accessor, p params.Params, lines int) (*LineCached, error) {
	if inner == nil {
		return nil, fmt.Errorf("memmodel: LineCached over nil accessor")
	}
	c, err := swap.NewPageCache(lines)
	if err != nil {
		return nil, err
	}
	return &LineCached{inner: inner, lines: c, p: p}, nil
}

// Access implements Accessor: hits cost the cache latency; misses fill
// the line from the backing memory, and dirty victims write back to it.
func (c *LineCached) Access(a uint64, write bool) params.Duration {
	res := c.lines.Touch(a/params.CacheLineSize, write)
	if res.Hit {
		return c.p.L1Latency
	}
	c.Fills++
	cost := c.p.L1Latency + c.inner.Access(a, false) // line fill
	if res.EvictedDirty {
		cost += c.inner.Access(res.Evicted*params.CacheLineSize, true)
	}
	return cost
}

// Name implements Accessor.
func (c *LineCached) Name() string { return c.inner.Name() }

// HitRate returns the cache hit fraction.
func (c *LineCached) HitRate() float64 {
	total := c.lines.Hits + c.lines.Misses
	if total == 0 {
		return 0
	}
	return float64(c.lines.Hits) / float64(total)
}

// Flush empties the cache, writing dirty lines back to the backing
// memory, and returns the writeback count and the charged writeback
// cost. This is the operation the prototype performs between a write
// phase and a read-only parallel phase. Each dirty line is charged at
// its real address (MRU first) — under a Striped or Swap backing the
// writeback must land on the stripe or page that actually holds the
// line, not at address 0.
func (c *LineCached) Flush() (dirty int, cost params.Duration) {
	dirty = c.lines.FlushDirty(func(line uint64) {
		cost += c.inner.Access(line*params.CacheLineSize, true)
	})
	return dirty, cost
}
