package memmodel

import "repro/internal/params"

// This file is the batched access engine: the macro layer's fast path.
// Scalar Access prices one access per virtual call; at paper scale the
// hot producers (b-tree searches, PARSEC-class kernels, database
// queries) make hundreds of millions of them, and interface dispatch
// plus per-access bookkeeping dominates the run. AccessBatch prices a
// whole op sequence in one tight loop over the concrete model types —
// the common compositions (LineCached→Striped, Swap over its page
// cache) never make an interface call per access — while producing
// exactly the per-op costs, accessor state, and counter updates the
// scalar path would. The scalar-vs-batched oracle tests pin that
// equivalence.

// AccessOp is one access in a batch.
type AccessOp struct {
	// Addr is the byte address accessed.
	Addr uint64
	// Write marks stores.
	Write bool
}

// BatchAccessor is implemented by accessors that price a whole batch in
// one call. All model types in this package implement it; foreign
// accessors fall back to per-op scalar pricing in Batch.
type BatchAccessor interface {
	Accessor
	// AccessBatch prices ops in order and returns their total cost,
	// updating the accessor's state exactly as len(ops) scalar Access
	// calls would.
	AccessBatch(ops []AccessOp) params.Duration
}

// Batch prices ops through acc, devirtualizing the known model types so
// the dispatch happens once per batch instead of once per access.
// Unknown accessors that implement BatchAccessor get one interface call
// per batch; anything else is priced per op, so Batch is always safe.
func Batch(acc Accessor, ops []AccessOp) params.Duration {
	switch a := acc.(type) {
	case Local:
		return a.AccessBatch(ops)
	case Remote:
		return a.AccessBatch(ops)
	case *Swap:
		return a.AccessBatch(ops)
	case *Striped:
		return a.AccessBatch(ops)
	case *LineCached:
		return a.AccessBatch(ops)
	case *Meter:
		return a.AccessBatch(ops)
	case BatchAccessor:
		return a.AccessBatch(ops)
	default:
		var total params.Duration
		for _, op := range ops {
			total += acc.Access(op.Addr, op.Write)
		}
		return total
	}
}

// AccessBatch implements BatchAccessor: every local access costs the
// same constant, so the batch is one multiplication.
func (l Local) AccessBatch(ops []AccessOp) params.Duration {
	return params.Duration(len(ops)) * l.P.DRAMLatency
}

// AccessBatch implements BatchAccessor: Equation (2) prices every
// access at the constant line round trip, so the batch is one
// multiplication — the degenerate (and fastest) case of batching.
func (r Remote) AccessBatch(ops []AccessOp) params.Duration {
	return params.Duration(len(ops)) * r.P.RemoteRoundTrip(r.Hops)
}

// AccessBatch implements BatchAccessor: one tight loop over the page
// cache with the device costs precomputed, no interface calls.
func (s *Swap) AccessBatch(ops []AccessOp) params.Duration {
	dram := s.p.DRAMLatency
	fault, wb := s.faultCost, s.wbCost
	cache := s.cache
	var total, faultTime params.Duration
	for _, op := range ops {
		res := cache.Touch(op.Addr/params.PageSize, op.Write)
		if res.Hit {
			total += dram
			continue
		}
		cost := fault
		if res.EvictedDirty {
			cost += wb
		}
		faultTime += cost
		total += cost + dram
	}
	s.FaultTime += faultTime
	return total
}

// AccessBatch implements BatchAccessor. Constant-latency stripes are
// priced from the cached per-stripe cost; only stateful stripes go
// through their Accessor.
func (s *Striped) AccessBatch(ops []AccessOp) params.Duration {
	var total params.Duration
	for _, op := range ops {
		total += s.access1(op.Addr, op.Write)
	}
	return total
}

// AccessBatch implements BatchAccessor. The inner accessor's type is
// resolved once per batch; misses then fill (and dirty victims write
// back) through concrete calls, so the LineCached→Striped and
// LineCached→Swap compositions price whole batches with no per-access
// interface dispatch.
func (c *LineCached) AccessBatch(ops []AccessOp) params.Duration {
	l1 := c.p.L1Latency
	lines := c.lines
	var total params.Duration
	var fills uint64
	switch in := c.inner.(type) {
	case Local:
		fill := in.P.DRAMLatency
		for _, op := range ops {
			res := lines.Touch(op.Addr/params.CacheLineSize, op.Write)
			if res.Hit {
				total += l1
				continue
			}
			fills++
			cost := l1 + fill
			if res.EvictedDirty {
				cost += fill
			}
			total += cost
		}
	case Remote:
		fill := in.P.RemoteRoundTrip(in.Hops)
		for _, op := range ops {
			res := lines.Touch(op.Addr/params.CacheLineSize, op.Write)
			if res.Hit {
				total += l1
				continue
			}
			fills++
			cost := l1 + fill
			if res.EvictedDirty {
				cost += fill
			}
			total += cost
		}
	case *Striped:
		for _, op := range ops {
			res := lines.Touch(op.Addr/params.CacheLineSize, op.Write)
			if res.Hit {
				total += l1
				continue
			}
			fills++
			cost := l1 + in.access1(op.Addr, false)
			if res.EvictedDirty {
				cost += in.access1(res.Evicted*params.CacheLineSize, true)
			}
			total += cost
		}
	case *Swap:
		for _, op := range ops {
			res := lines.Touch(op.Addr/params.CacheLineSize, op.Write)
			if res.Hit {
				total += l1
				continue
			}
			fills++
			cost := l1 + in.access1(op.Addr, false)
			if res.EvictedDirty {
				cost += in.access1(res.Evicted*params.CacheLineSize, true)
			}
			total += cost
		}
	default:
		for _, op := range ops {
			res := lines.Touch(op.Addr/params.CacheLineSize, op.Write)
			if res.Hit {
				total += l1
				continue
			}
			fills++
			cost := l1 + c.inner.Access(op.Addr, false)
			if res.EvictedDirty {
				cost += c.inner.Access(res.Evicted*params.CacheLineSize, true)
			}
			total += cost
		}
	}
	c.Fills += fills
	return total
}

// AccessBatch implements BatchAccessor: the wrapped accessor prices the
// batch, and the meter accumulates once.
func (m *Meter) AccessBatch(ops []AccessOp) params.Duration {
	d := Batch(m.Acc, ops)
	m.Accesses += uint64(len(ops))
	m.Time += d
	return d
}

// Batcher accumulates the accesses of one logical unit of work — a
// b-tree node visit, a range-scan segment, a kernel pass — and prices
// them in one Batch call. The zero value is ready to use; the op buffer
// is retained across Flush calls, so a reused Batcher's steady state
// allocates nothing. A Batcher must not be shared between goroutines;
// sharded sweeps give every shard its own.
type Batcher struct {
	ops []AccessOp
}

// Read records a load at address a.
func (b *Batcher) Read(a uint64) { b.ops = append(b.ops, AccessOp{Addr: a}) }

// Write records a store at address a.
func (b *Batcher) Write(a uint64) { b.ops = append(b.ops, AccessOp{Addr: a, Write: true}) }

// Add records an access.
func (b *Batcher) Add(a uint64, write bool) {
	b.ops = append(b.ops, AccessOp{Addr: a, Write: write})
}

// Len returns the number of buffered ops.
func (b *Batcher) Len() int { return len(b.ops) }

// Grow ensures capacity for at least n buffered ops, pre-sizing the
// buffer so 0-alloc steady state starts at the first batch.
func (b *Batcher) Grow(n int) {
	if cap(b.ops) < n {
		ops := make([]AccessOp, len(b.ops), n)
		copy(ops, b.ops)
		b.ops = ops
	}
}

// Flush prices the buffered ops through acc in record order, clears the
// buffer (retaining its capacity), and returns the total cost.
func (b *Batcher) Flush(acc Accessor) params.Duration {
	if len(b.ops) == 0 {
		return 0
	}
	d := Batch(acc, b.ops)
	b.ops = b.ops[:0]
	return d
}
