package memmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/params"
	"repro/internal/swap"
)

func TestLocalAndRemoteConstants(t *testing.T) {
	p := params.Default()
	l := Local{P: p}
	if l.Access(0, false) != p.DRAMLatency || l.Access(1<<40, true) != p.DRAMLatency {
		t.Error("local latency not constant")
	}
	r := Remote{P: p, Hops: 3}
	if r.Access(12345, false) != p.RemoteRoundTrip(3) {
		t.Error("remote latency wrong")
	}
	if (Remote{P: p, Hops: 1}).Access(0, false) >= r.Access(0, false) {
		t.Error("more hops not slower")
	}
	if l.Name() == "" || r.Name() == "" {
		t.Error("unnamed accessors")
	}
}

func TestSwapHitMissCosts(t *testing.T) {
	p := params.Default()
	s, err := NewSwap(p, swap.RemoteDevice{P: p, Hops: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	const page = params.PageSize
	miss := s.Access(0, false)
	hit := s.Access(8, false)
	if hit != p.DRAMLatency {
		t.Errorf("resident access = %d, want %d", hit, p.DRAMLatency)
	}
	wantMiss := p.SwapTrapOverhead + p.SwapPageTransfer + 2*p.HopLatency + p.DRAMLatency
	if miss != wantMiss {
		t.Errorf("fault = %d, want %d", miss, wantMiss)
	}
	// Dirty eviction pays a writeback.
	s.Access(page, true)            // page 1 resident dirty
	s.Access(2*page, false)         // page 2: evicts page 0 (clean)
	cost := s.Access(3*page, false) // evicts page 1 (dirty)
	if cost <= wantMiss {
		t.Errorf("dirty eviction cost %d not above clean fault %d", cost, wantMiss)
	}
	if s.FaultTime == 0 {
		t.Error("FaultTime not accumulated")
	}
}

func TestSwapThrashingVsFit(t *testing.T) {
	p := params.Default()
	fit, _ := NewSwap(p, swap.RemoteDevice{P: p, Hops: 1}, 64)
	thrash, _ := NewSwap(p, swap.RemoteDevice{P: p, Hops: 1}, 64)

	var fitTime, thrashTime params.Duration
	// Working set of 32 pages fits; 1024 pages thrashes.
	for i := 0; i < 4096; i++ {
		fitTime += fit.Access(uint64(i%32)*params.PageSize, false)
		thrashTime += thrash.Access(uint64(i%1024)*params.PageSize, false)
	}
	if thrashTime < 10*fitTime {
		t.Errorf("thrashing (%d) not dramatically worse than fitting (%d)", thrashTime, fitTime)
	}
}

func TestNewSwapValidation(t *testing.T) {
	p := params.Default()
	if _, err := NewSwap(p, swap.DiskDevice{P: p}, 0); err == nil {
		t.Error("zero residency accepted")
	}
}

func TestDiskSlowerThanRemoteSwap(t *testing.T) {
	p := params.Default()
	disk, _ := NewSwap(p, swap.DiskDevice{P: p}, 16)
	remote, _ := NewSwap(p, swap.RemoteDevice{P: p, Hops: 1}, 16)
	if disk.Access(0, false) <= remote.Access(0, false) {
		t.Error("disk fault not slower than remote-swap fault")
	}
}

func TestMeter(t *testing.T) {
	p := params.Default()
	m := NewMeter(Local{P: p})
	for i := 0; i < 10; i++ {
		m.Access(uint64(i), false)
	}
	if m.Accesses != 10 || m.Time != 10*p.DRAMLatency {
		t.Errorf("meter = %d accesses, %d time", m.Accesses, m.Time)
	}
	if m.MeanAccess() != float64(p.DRAMLatency) {
		t.Errorf("MeanAccess = %v", m.MeanAccess())
	}
	m.Reset()
	if m.Accesses != 0 || m.Time != 0 || m.MeanAccess() != 0 {
		t.Error("Reset incomplete")
	}
	if m.Name() != (Local{}).Name() {
		t.Error("meter renamed accessor")
	}
}

func TestBuildConfigs(t *testing.T) {
	p := params.Default()
	for _, cfg := range []Config{ConfigLocal, ConfigRemote, ConfigRemoteSwap, ConfigDiskSwap} {
		acc, err := Build(cfg, p, 1, 128)
		if err != nil {
			t.Errorf("Build(%v): %v", cfg, err)
			continue
		}
		if acc.Access(0, false) <= 0 {
			t.Errorf("%v: non-positive latency", cfg)
		}
		if cfg.String() == "" {
			t.Errorf("%v unnamed", int(cfg))
		}
	}
	if _, err := Build(Config(99), p, 1, 128); err == nil {
		t.Error("unknown config accepted")
	}
	if Config(99).String() == "" {
		t.Error("unknown config renders empty")
	}
}

// TestRemoteInsensitiveToLocalityProperty: Equation (2)'s defining
// property — remote-memory time depends only on the access count, never
// on the addresses.
func TestRemoteInsensitiveToLocalityProperty(t *testing.T) {
	p := params.Default()
	r := Remote{P: p, Hops: 2}
	f := func(addrs []uint64) bool {
		var total params.Duration
		for _, a := range addrs {
			total += r.Access(a, a%2 == 0)
		}
		return total == params.Duration(len(addrs))*p.RemoteRoundTrip(2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSwapMonotoneInResidencyProperty: more resident pages never makes a
// fixed trace slower.
func TestSwapMonotoneInResidencyProperty(t *testing.T) {
	p := params.Default()
	f := func(trace []uint16, capSel uint8) bool {
		small := int(capSel%32) + 1
		big := small * 2
		run := func(capacity int) params.Duration {
			s, err := NewSwap(p, swap.RemoteDevice{P: p, Hops: 1}, capacity)
			if err != nil {
				return -1
			}
			var total params.Duration
			for _, a := range trace {
				total += s.Access(uint64(a)*params.PageSize/4, false)
			}
			return total
		}
		return run(big) <= run(small)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStriped(t *testing.T) {
	p := params.Default()
	s, err := NewStriped(p, []Stripe{
		{Start: 0, Size: 1000, Acc: Local{P: p}},
		{Start: 1000, Size: 1000, Acc: Remote{P: p, Hops: 1}},
		{Start: 5000, Size: 1000, Acc: Remote{P: p, Hops: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Access(500, false); got != p.DRAMLatency {
		t.Errorf("local stripe = %d", got)
	}
	if got := s.Access(1999, false); got != p.RemoteRoundTrip(1) {
		t.Errorf("1-hop stripe = %d", got)
	}
	if got := s.Access(5000, true); got != p.RemoteRoundTrip(4) {
		t.Errorf("4-hop stripe = %d", got)
	}
	// Gap and beyond-the-end accesses are pessimistic and counted.
	if got := s.Access(3000, false); got != p.RemoteRoundTrip(6) {
		t.Errorf("gap access = %d, want diameter round trip", got)
	}
	s.Access(99999, false)
	if s.Unmapped != 2 {
		t.Errorf("Unmapped = %d", s.Unmapped)
	}
	if len(s.Stripes()) != 3 || s.Name() == "" {
		t.Error("introspection broken")
	}
}

func TestStripedValidation(t *testing.T) {
	p := params.Default()
	if _, err := NewStriped(p, nil); err == nil {
		t.Error("empty stripes accepted")
	}
	if _, err := NewStriped(p, []Stripe{{Start: 0, Size: 0, Acc: Local{P: p}}}); err == nil {
		t.Error("empty stripe accepted")
	}
	if _, err := NewStriped(p, []Stripe{{Start: 0, Size: 10, Acc: nil}}); err == nil {
		t.Error("nil accessor accepted")
	}
	if _, err := NewStriped(p, []Stripe{
		{Start: 0, Size: 100, Acc: Local{P: p}},
		{Start: 50, Size: 100, Acc: Local{P: p}},
	}); err == nil {
		t.Error("overlapping stripes accepted")
	}
}

func TestLineCached(t *testing.T) {
	p := params.Default()
	if _, err := NewLineCached(nil, p, 8); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewLineCached(Local{P: p}, p, 0); err == nil {
		t.Error("zero lines accepted")
	}
	inner := NewMeter(Remote{P: p, Hops: 1})
	c, err := NewLineCached(inner, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Miss fills from the backing; hit costs L1 and touches nothing.
	first := c.Access(0, false)
	if first <= p.RemoteRoundTrip(1) {
		t.Errorf("fill = %d, should include the remote trip", first)
	}
	if got := c.Access(8, false); got != p.L1Latency {
		t.Errorf("hit = %d", got)
	}
	if inner.Accesses != 1 {
		t.Errorf("backing saw %d accesses, want 1", inner.Accesses)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", c.HitRate())
	}
	// Dirty eviction writes back through the backing.
	c.Access(64, true) // dirty line 1
	c.Access(128, false)
	c.Access(192, false)
	before := inner.Accesses
	c.Access(256, false) // evicts LRU (line 0, clean) then next evicts dirty
	c.Access(320, false)
	if inner.Accesses <= before+1 {
		t.Log("no dirty writeback observed yet (LRU order dependent)")
	}
	// Flush pushes remaining dirty lines back and empties the cache.
	c.Access(384, true)
	if dirty, cost := c.Flush(); dirty == 0 || cost == 0 {
		t.Error("flush found no dirty lines or charged nothing")
	}
	if got := c.Access(384, false); got == p.L1Latency {
		t.Error("flushed line still hit")
	}
	if c.Name() != inner.Name() {
		t.Error("LineCached renamed its backing")
	}
}

func TestLineCachedEmptyHitRate(t *testing.T) {
	p := params.Default()
	c, err := NewLineCached(Local{P: p}, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.HitRate() != 0 {
		t.Error("untouched cache has a hit rate")
	}
}
