// Bulk pricing: unlike the analytic accessors above (closed-form
// per-line costs), bulk transfers are priced from simulation. A burst's
// cost is not linear in its line count — descriptor amortization, frame
// pipelining against DRAM bank occupancy, and the single cumulative ack
// all bend the curve — so the model runs each (kind, lines) point once
// through the real RMC burst machinery on a two-node micro-rig at the
// configured mesh distance, and caches the result.
package memmodel

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/mesh"
	"repro/internal/params"
	"repro/internal/rmc"
	"repro/internal/sim"
)

// BulkPricer prices one bulk transfer of n contiguous cache lines.
type BulkPricer interface {
	// BulkRead returns the completion time of gathering lines remote
	// cache lines in one operation.
	BulkRead(lines int) params.Duration
	// BulkWrite returns the completion time of scattering lines cache
	// lines in one operation.
	BulkWrite(lines int) params.Duration
}

// BulkModel prices bulk transfers by running them. Hops 0 prices local
// bursts (memory controllers only); hops >= 1 prices remote bursts
// through the full simulated path — doorbell, descriptor frame, mesh
// traversal, per-line bank accesses pipelined behind burst frames, and
// the amortized ack. Transfers larger than one burst's geometry are
// issued as the concurrent burst set the core layer would emit.
type BulkModel struct {
	P    params.Params
	Hops int

	cache map[bulkKey]params.Duration
}

type bulkKey struct {
	write bool
	lines int
}

// NewBulkModel builds a pricer at the given mesh distance.
func NewBulkModel(p params.Params, hops int) (*BulkModel, error) {
	if hops < 0 || hops > 64 {
		return nil, fmt.Errorf("memmodel: bulk model at %d hops", hops)
	}
	return &BulkModel{P: p, Hops: hops, cache: make(map[bulkKey]params.Duration)}, nil
}

// BulkRead implements BulkPricer.
func (m *BulkModel) BulkRead(lines int) params.Duration { return m.price(lines, false) }

// BulkWrite implements BulkPricer.
func (m *BulkModel) BulkWrite(lines int) params.Duration { return m.price(lines, true) }

// Name identifies the model in figure notes.
func (m *BulkModel) Name() string {
	if m.Hops == 0 {
		return "bulk local"
	}
	return fmt.Sprintf("bulk remote (%d hops)", m.Hops)
}

func (m *BulkModel) price(lines int, write bool) params.Duration {
	if lines <= 0 {
		return 0
	}
	k := bulkKey{write: write, lines: lines}
	if d, ok := m.cache[k]; ok {
		return d
	}
	var d params.Duration
	if m.Hops == 0 {
		d = m.priceLocal(lines, write)
	} else {
		d = m.priceRemote(lines, write)
	}
	m.cache[k] = d
	return d
}

// priceLocal runs the lines through one node's memory controllers: the
// same pipelined bank run cluster.Node serves local bursts with.
func (m *BulkModel) priceLocal(lines int, write bool) params.Duration {
	eng := sim.New()
	bank := dram.NewBank(eng, 1, m.P)
	var memDone sim.Time
	for i := 0; i < lines; i++ {
		t, err := bank.Access(0, addr.Phys(uint64(i)*params.CacheLineSize), write)
		if err != nil {
			panic(fmt.Sprintf("memmodel: bulk local pricing: %v", err))
		}
		if t > memDone {
			memDone = t
		}
	}
	return params.Duration(memDone)
}

// microPeers is the two-RMC network of the pricing rig.
type microPeers map[addr.NodeID]*rmc.RMC

func (p microPeers) RMC(n addr.NodeID) (*rmc.RMC, error) {
	m, ok := p[n]
	if !ok {
		return nil, fmt.Errorf("memmodel: pricing rig has no node %d", n)
	}
	return m, nil
}

// priceRemote builds a 1×(hops+1) mesh with a client at one end and the
// serving node at the other, issues the transfer as bursts, and returns
// the drain time.
func (m *BulkModel) priceRemote(lines int, write bool) params.Duration {
	eng := sim.New()
	topo, err := mesh.NewTopology(m.Hops+1, 1)
	if err != nil {
		panic(fmt.Sprintf("memmodel: bulk pricing topology: %v", err))
	}
	fabric := mesh.NewFabric(eng, topo, m.P, nil)
	peers := microPeers{}
	for _, id := range []addr.NodeID{1, addr.NodeID(m.Hops + 1)} {
		st, err := mem.NewStore(m.P.MemPerNode)
		if err != nil {
			panic(fmt.Sprintf("memmodel: bulk pricing store: %v", err))
		}
		r, err := rmc.New(rmc.Config{
			Self: id, Engine: eng, Params: m.P, Fabric: fabric,
			Peers: peers, Bank: dram.NewBank(eng, id, m.P), Store: st,
		})
		if err != nil {
			panic(fmt.Sprintf("memmodel: bulk pricing rig: %v", err))
		}
		peers[id] = r
	}
	dst := addr.NodeID(m.Hops + 1)
	kind := rmc.BulkRead
	if write {
		kind = rmc.BulkWrite
	}
	// Issue the burst set the core layer would emit for this many
	// lines: full bursts concurrently, contending at the client RMC.
	maxLines := m.P.BurstMaxLines()
	var last sim.Time
	for off := 0; off < lines; off += maxLines {
		n := min(maxLines, lines-off)
		req := rmc.BulkRequest{
			Kind: kind,
			Spans: []rmc.Span{{
				Start: addr.Phys(uint64(off) * params.CacheLineSize).WithNode(dst),
				Lines: n,
			}},
			Done: func(t sim.Time, err error) {
				if err != nil {
					panic(fmt.Sprintf("memmodel: bulk pricing run: %v", err))
				}
				if t > last {
					last = t
				}
			},
		}
		if write {
			req.Data = make([]byte, n*params.CacheLineSize)
		}
		if err := peers[1].RequestBulk(0, req); err != nil {
			panic(fmt.Sprintf("memmodel: bulk pricing request: %v", err))
		}
	}
	eng.Run()
	return params.Duration(last)
}

var _ BulkPricer = (*BulkModel)(nil)
