package memmodel

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/params"
	"repro/internal/swap"
)

// makeStack builds one accessor of the named composition. Each call
// returns a fresh, independent instance so the oracle can drive two
// identical stacks — one scalar, one batched — through the same stream.
func makeStack(t *testing.T, p params.Params, kind string) Accessor {
	t.Helper()
	mkStriped := func() *Striped {
		s, err := NewStriped(p, []Stripe{
			{Start: 0, Size: 1 << 20, Acc: Local{P: p}},
			{Start: 1 << 20, Size: 1 << 20, Acc: Remote{P: p, Hops: 1}},
			{Start: 3 << 20, Size: 1 << 20, Acc: Remote{P: p, Hops: 4}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	mkSwap := func(dev swap.Device) *Swap {
		s, err := NewSwap(p, dev, 32)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	mkCached := func(inner Accessor) *LineCached {
		c, err := NewLineCached(inner, p, 64)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	switch kind {
	case "local":
		return Local{P: p}
	case "remote":
		return Remote{P: p, Hops: 2}
	case "swap-remote":
		return mkSwap(swap.RemoteDevice{P: p, Hops: 1})
	case "swap-disk":
		return mkSwap(swap.DiskDevice{P: p})
	case "striped":
		return mkStriped()
	case "striped-stateful":
		// A stripe backed by a stateful accessor exercises the dynamic
		// (non-const-cost) path inside Striped.
		s, err := NewStriped(p, []Stripe{
			{Start: 0, Size: 1 << 20, Acc: NewMeter(Local{P: p})},
			{Start: 1 << 20, Size: 1 << 20, Acc: mkSwap(swap.RemoteDevice{P: p, Hops: 2})},
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	case "cached-local":
		return mkCached(Local{P: p})
	case "cached-remote":
		return mkCached(Remote{P: p, Hops: 1})
	case "cached-striped":
		return mkCached(mkStriped())
	case "cached-swap":
		return mkCached(mkSwap(swap.RemoteDevice{P: p, Hops: 1}))
	case "cached-meter":
		// A Meter inner takes LineCached's default (interface) inner path.
		return mkCached(NewMeter(Remote{P: p, Hops: 1}))
	case "meter-cached-striped":
		return NewMeter(mkCached(mkStriped()))
	case "meter-swap":
		return NewMeter(mkSwap(swap.RemoteDevice{P: p, Hops: 1}))
	default:
		t.Fatalf("unknown stack %q", kind)
		return nil
	}
}

// oracleStacks lists every composition the oracle covers.
var oracleStacks = []string{
	"local", "remote", "swap-remote", "swap-disk", "striped",
	"striped-stateful", "cached-local", "cached-remote",
	"cached-striped", "cached-swap", "cached-meter",
	"meter-cached-striped", "meter-swap",
}

// stateSig fingerprints every piece of observable accessor state the
// batch path must keep identical to the scalar path: meters, fill and
// fault counters, cache hit/miss/eviction statistics, residency.
func stateSig(acc Accessor) string {
	switch a := acc.(type) {
	case Local, Remote:
		return "stateless"
	case *Swap:
		c := a.Cache()
		return fmt.Sprintf("swap{fault=%d h=%d m=%d ev=%d dev=%d res=%d}",
			a.FaultTime, c.Hits, c.Misses, c.Evictions, c.DirtyEvictions, c.Resident())
	case *Striped:
		sig := fmt.Sprintf("striped{unmapped=%d", a.Unmapped)
		for i := range a.stripes {
			sig += " " + stateSig(a.stripes[i].Acc)
		}
		return sig + "}"
	case *LineCached:
		return fmt.Sprintf("cached{fills=%d h=%d m=%d ev=%d dev=%d inner=%s}",
			a.Fills, a.lines.Hits, a.lines.Misses, a.lines.Evictions,
			a.lines.DirtyEvictions, stateSig(a.inner))
	case *Meter:
		return fmt.Sprintf("meter{n=%d t=%d inner=%s}", a.Accesses, a.Time, stateSig(a.Acc))
	default:
		return "?"
	}
}

// opStream draws a deterministic access stream that exercises hits,
// misses, evictions, dirty writebacks, stripe boundaries, and unmapped
// gaps.
func opStream(seed int64, n int) []AccessOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]AccessOp, n)
	for i := range ops {
		var a uint64
		switch rng.Intn(10) {
		case 0: // unmapped gap between stripes 2 and 3
			a = 2<<20 + uint64(rng.Intn(1<<20))
		case 1, 2, 3: // hot set: high line/page hit rates
			a = uint64(rng.Intn(16 * params.PageSize))
		default: // full mapped span
			a = uint64(rng.Intn(4 << 20))
		}
		ops[i] = AccessOp{Addr: a, Write: rng.Intn(4) == 0}
	}
	return ops
}

// TestScalarBatchOracle is the tentpole's correctness contract: for
// every accessor composition, a random access stream priced through
// Access one op at a time and through AccessBatch in arbitrary chunks
// produces the identical total cost, identical per-chunk subtotals, and
// identical accessor/meter state.
func TestScalarBatchOracle(t *testing.T) {
	p := params.Default()
	for _, kind := range oracleStacks {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				scalar := makeStack(t, p, kind)
				batched := makeStack(t, p, kind)
				ops := opStream(seed, 4096)
				rng := rand.New(rand.NewSource(seed * 31))
				var scalarTotal, batchTotal params.Duration
				for lo := 0; lo < len(ops); {
					hi := lo + 1 + rng.Intn(257)
					if hi > len(ops) {
						hi = len(ops)
					}
					chunk := ops[lo:hi]
					var scalarChunk params.Duration
					for _, op := range chunk {
						scalarChunk += scalar.Access(op.Addr, op.Write)
					}
					batchChunk := Batch(batched, chunk)
					if scalarChunk != batchChunk {
						t.Fatalf("seed %d chunk [%d:%d): scalar %d != batch %d", seed, lo, hi, scalarChunk, batchChunk)
					}
					scalarTotal += scalarChunk
					batchTotal += batchChunk
					lo = hi
				}
				if scalarTotal != batchTotal {
					t.Fatalf("seed %d: totals diverged: %d vs %d", seed, scalarTotal, batchTotal)
				}
				if ss, bs := stateSig(scalar), stateSig(batched); ss != bs {
					t.Fatalf("seed %d: state diverged:\nscalar: %s\nbatch:  %s", seed, ss, bs)
				}
			}
		})
	}
}

// TestBatcherFlush covers the accumulate-and-flush helper.
func TestBatcherFlush(t *testing.T) {
	p := params.Default()
	var b Batcher
	if got := b.Flush(Local{P: p}); got != 0 {
		t.Errorf("empty flush = %d", got)
	}
	b.Read(0)
	b.Write(8)
	b.Add(16, false)
	if b.Len() != 3 {
		t.Errorf("Len = %d", b.Len())
	}
	if got, want := b.Flush(Local{P: p}), 3*p.DRAMLatency; got != want {
		t.Errorf("flush = %d, want %d", got, want)
	}
	if b.Len() != 0 {
		t.Error("flush did not clear the buffer")
	}
	b.Grow(1024)
	if cap(b.ops) < 1024 {
		t.Error("Grow did not grow")
	}
}

// TestLineCachedFlushChargesRealAddresses is the regression test for
// the writeback-pricing fix: Flush must charge each dirty line at the
// line's own address, so under a Striped inner the stripe that actually
// holds the line pays — never the stripe at address 0.
func TestLineCachedFlushChargesRealAddresses(t *testing.T) {
	p := params.Default()
	low := NewMeter(Remote{P: p, Hops: 1})  // covers address 0
	high := NewMeter(Remote{P: p, Hops: 4}) // holds everything we touch
	st, err := NewStriped(p, []Stripe{
		{Start: 0, Size: 1 << 20, Acc: low},
		{Start: 1 << 20, Size: 1 << 20, Acc: high},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewLineCached(st, p, 16)
	if err != nil {
		t.Fatal(err)
	}
	const base = 1 << 20
	for i := uint64(0); i < 4; i++ {
		c.Access(base+i*params.CacheLineSize, true)
	}
	fills := high.Accesses
	dirty, cost := c.Flush()
	if dirty != 4 {
		t.Fatalf("Flush = %d dirty, want 4", dirty)
	}
	if low.Accesses != 0 {
		t.Errorf("stripe at address 0 was charged %d accesses; writebacks mispriced", low.Accesses)
	}
	if high.Accesses != fills+4 {
		t.Errorf("holding stripe saw %d accesses, want %d fills + 4 writebacks", high.Accesses, fills)
	}
	if want := 4 * p.RemoteRoundTrip(4); cost != want {
		t.Errorf("flush cost = %d, want %d", cost, want)
	}
}

// TestLineCachedEvictionWritebackAddress pins the same property for
// eviction writebacks on the access path: the victim's writeback lands
// on the stripe holding the victim line.
func TestLineCachedEvictionWritebackAddress(t *testing.T) {
	p := params.Default()
	low := NewMeter(Remote{P: p, Hops: 1})
	high := NewMeter(Remote{P: p, Hops: 4})
	st, err := NewStriped(p, []Stripe{
		{Start: 0, Size: 64, Acc: low}, // exactly one line at address 0
		{Start: 64, Size: 1 << 20, Acc: high},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewLineCached(st, p, 1) // single-line cache: every miss evicts
	if err != nil {
		t.Fatal(err)
	}
	c.Access(64, true)   // fill line 1 via high, dirty
	c.Access(128, false) // evicts dirty line 1 → writeback must hit high
	if low.Accesses != 0 {
		t.Errorf("stripe at address 0 charged %d accesses by an eviction of line 1", low.Accesses)
	}
	if high.Accesses != 3 { // two fills + one writeback
		t.Errorf("holding stripe saw %d accesses, want 3", high.Accesses)
	}
}

// TestBatchedPricingLoopAllocs pins the batched pricing loop of every
// hot composition at 0 allocs/op — the macro-layer counterpart of the
// micro layer's engine and RMC alloc tests.
func TestBatchedPricingLoopAllocs(t *testing.T) {
	p := params.Default()
	for _, kind := range []string{
		"local", "remote", "swap-remote", "striped",
		"cached-striped", "cached-swap", "meter-cached-striped",
	} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			acc := makeStack(t, p, kind)
			ops := opStream(11, 2048)
			Batch(acc, ops) // warm caches and map internals
			var sink params.Duration
			allocs := testing.AllocsPerRun(50, func() {
				sink += Batch(acc, ops)
			})
			if allocs != 0 {
				t.Errorf("batched pricing loop: %.1f allocs/op, want 0", allocs)
			}
			if sink == 0 {
				t.Error("priced nothing")
			}
		})
	}
}
