package memmodel

import (
	"fmt"
	"sort"

	"repro/internal/params"
)

// Stripe is one address interval backed by one memory configuration.
type Stripe struct {
	// Start and Size delimit the interval [Start, Start+Size).
	Start, Size uint64
	// Acc prices accesses falling in the interval.
	Acc Accessor
}

// Striped prices accesses by which backing the address falls in — the
// model of a real region whose memory spans the local node and several
// donors at different hop distances. Where the uniform Remote accessor
// assumes one distance for everything, Striped reflects the placement
// the reservation protocol actually produced.
type Striped struct {
	stripes []Stripe
	// Unmapped counts accesses that hit no stripe; they are charged the
	// full-diameter remote round trip, pessimistically.
	Unmapped uint64
	fallback params.Duration
	p        params.Params
}

// NewStriped builds the model. Stripes must not overlap.
func NewStriped(p params.Params, stripes []Stripe) (*Striped, error) {
	if len(stripes) == 0 {
		return nil, fmt.Errorf("memmodel: striped model with no stripes")
	}
	s := make([]Stripe, len(stripes))
	copy(s, stripes)
	sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	for i, st := range s {
		if st.Size == 0 || st.Acc == nil {
			return nil, fmt.Errorf("memmodel: stripe %d empty or accessor-less", i)
		}
		if i > 0 && st.Start < s[i-1].Start+s[i-1].Size {
			return nil, fmt.Errorf("memmodel: stripes %d and %d overlap", i-1, i)
		}
	}
	diameter := p.MeshWidth + p.MeshHeight - 2
	return &Striped{stripes: s, fallback: p.RemoteRoundTrip(diameter), p: p}, nil
}

// Access implements Accessor.
func (s *Striped) Access(a uint64, write bool) params.Duration {
	i := sort.Search(len(s.stripes), func(i int) bool {
		return s.stripes[i].Start+s.stripes[i].Size > a
	})
	if i < len(s.stripes) && a >= s.stripes[i].Start {
		return s.stripes[i].Acc.Access(a, write)
	}
	s.Unmapped++
	return s.fallback
}

// Name implements Accessor.
func (s *Striped) Name() string { return "region layout" }

// Stripes returns the model's intervals in address order.
func (s *Striped) Stripes() []Stripe {
	out := make([]Stripe, len(s.stripes))
	copy(out, s.stripes)
	return out
}
