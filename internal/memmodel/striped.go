package memmodel

import (
	"fmt"
	"sort"

	"repro/internal/params"
)

// Stripe is one address interval backed by one memory configuration.
type Stripe struct {
	// Start and Size delimit the interval [Start, Start+Size).
	Start, Size uint64
	// Acc prices accesses falling in the interval.
	Acc Accessor
}

// Striped prices accesses by which backing the address falls in — the
// model of a real region whose memory spans the local node and several
// donors at different hop distances. Where the uniform Remote accessor
// assumes one distance for everything, Striped reflects the placement
// the reservation protocol actually produced.
type Striped struct {
	stripes []Stripe
	// constCost caches the per-access price of stripes backed by
	// constant-latency accessors (Local, Remote), so pricing them needs
	// no interface call at all; -1 marks a stripe that must be priced
	// through its Accessor (it may carry state, like a Meter or Swap).
	constCost []params.Duration
	// Unmapped counts accesses that hit no stripe; they are charged the
	// full-diameter remote round trip, pessimistically.
	Unmapped uint64
	fallback params.Duration
	p        params.Params
}

// NewStriped builds the model. Stripes must not overlap.
func NewStriped(p params.Params, stripes []Stripe) (*Striped, error) {
	if len(stripes) == 0 {
		return nil, fmt.Errorf("memmodel: striped model with no stripes")
	}
	s := make([]Stripe, len(stripes))
	copy(s, stripes)
	sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	cc := make([]params.Duration, len(s))
	for i, st := range s {
		if st.Size == 0 || st.Acc == nil {
			return nil, fmt.Errorf("memmodel: stripe %d empty or accessor-less", i)
		}
		if i > 0 && st.Start < s[i-1].Start+s[i-1].Size {
			return nil, fmt.Errorf("memmodel: stripes %d and %d overlap", i-1, i)
		}
		switch acc := st.Acc.(type) {
		case Local:
			cc[i] = acc.P.DRAMLatency
		case Remote:
			cc[i] = acc.P.RemoteRoundTrip(acc.Hops)
		default:
			cc[i] = -1
		}
	}
	diameter := p.MeshWidth + p.MeshHeight - 2
	return &Striped{stripes: s, constCost: cc, fallback: p.RemoteRoundTrip(diameter), p: p}, nil
}

// find returns the index of the stripe containing a, or -1.
func (s *Striped) find(a uint64) int {
	lo, hi := 0, len(s.stripes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.stripes[mid].Start+s.stripes[mid].Size > a {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo < len(s.stripes) && a >= s.stripes[lo].Start {
		return lo
	}
	return -1
}

// Access implements Accessor.
func (s *Striped) Access(a uint64, write bool) params.Duration {
	return s.access1(a, write)
}

// access1 prices one access through the concrete type — the
// devirtualized call the batched compositions use. Constant-latency
// stripes are priced from the cache, skipping their interface entirely.
func (s *Striped) access1(a uint64, write bool) params.Duration {
	i := s.find(a)
	if i < 0 {
		s.Unmapped++
		return s.fallback
	}
	if c := s.constCost[i]; c >= 0 {
		return c
	}
	return s.stripes[i].Acc.Access(a, write)
}

// Name implements Accessor.
func (s *Striped) Name() string { return "region layout" }

// Stripes returns the model's intervals in address order.
func (s *Striped) Stripes() []Stripe {
	out := make([]Stripe, len(s.stripes))
	copy(out, s.stripes)
	return out
}
