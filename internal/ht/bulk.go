// Bulk (scatter-gather) command vocabulary. The prototype's RMC moves
// one cache line per transaction; the bulk extension adds doorbell
// descriptors that carry N line ranges in one request and multi-line
// data frames that amortize header and ack overhead across a burst.
// The commands live beside the sized subset so the bridge, the CRC
// seal, and the fabric price them exactly like any other packet — a
// burst is bigger frames, not a second wire protocol.
package ht

import (
	"encoding/binary"
	"fmt"

	"repro/internal/addr"
)

// The bulk command extension.
const (
	// CmdBulkRd is a read-burst doorbell: Data carries an encoded span
	// list (see PutSpan), Count the total payload bytes the burst will
	// return. The server answers with pipelined multi-line RdResponse
	// frames, one per up-to-BurstFrameLines lines.
	CmdBulkRd Command = iota + 6
	// CmdBulkWr is one multi-line write data frame of a burst. It is
	// self-routing (Addr + Count describe its line run) and carries its
	// burst position in SrcTag; the target acknowledges the whole burst
	// with a single cumulative TgtDone after the last frame lands.
	CmdBulkWr
	// CmdBulkCopy is a region-to-region DMA doorbell sent to the node
	// owning the source spans: Data carries a copy header (destination
	// base, see PutCopyHeader) followed by the source span list. The
	// source streams CmdBulkWr frames directly to the destination node;
	// the data never transits the requester.
	CmdBulkCopy
)

// Bulk descriptor geometry.
const (
	// SpanBytes is the encoded size of one line span in a descriptor:
	// 8-byte start address + 8-byte line count.
	SpanBytes = 16

	// CopyHeaderBytes prefixes a CmdBulkCopy descriptor: the 8-byte
	// destination base address (node-prefixed) + 8 reserved bytes.
	CopyHeaderBytes = 16

	// MaxBurstFrames bounds the data frames of one burst: the frame
	// index and the burst length share SrcTag's two bytes. Callers split
	// larger transfers into multiple bursts.
	MaxBurstFrames = 256
)

// PutSpan encodes one line span at the start of b (SpanBytes long).
func PutSpan(b []byte, start addr.Phys, lines uint32) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(start))
	binary.LittleEndian.PutUint64(b[8:16], uint64(lines))
}

// GetSpan decodes one line span from the start of b.
func GetSpan(b []byte) (addr.Phys, uint32) {
	return addr.Phys(binary.LittleEndian.Uint64(b[0:8])),
		uint32(binary.LittleEndian.Uint64(b[8:16]))
}

// PutCopyHeader encodes the DMA copy header at the start of b.
func PutCopyHeader(b []byte, dst addr.Phys) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(dst))
	binary.LittleEndian.PutUint64(b[8:16], 0)
}

// GetCopyHeader decodes the DMA copy header from the start of b.
func GetCopyHeader(b []byte) addr.Phys {
	return addr.Phys(binary.LittleEndian.Uint64(b[0:8]))
}

// BurstTag packs a data frame's position into SrcTag: the low byte is
// the frame index, the high byte the burst length minus one.
func BurstTag(index, total int) uint16 {
	if total < 1 || total > MaxBurstFrames || index < 0 || index >= total {
		panic(fmt.Sprintf("ht: burst tag %d/%d out of range", index, total))
	}
	return uint16(index) | uint16(total-1)<<8
}

// BurstIndex unpacks a data frame's burst position from SrcTag.
func BurstIndex(tag uint16) (index, total int) {
	return int(tag & 0xff), int(tag>>8) + 1
}

// validateBulk holds the bulk-specific Validate cases.
func (p Packet) validateBulk() error {
	switch p.Cmd {
	case CmdBulkRd:
		if len(p.Data) == 0 || len(p.Data)%SpanBytes != 0 {
			return fmt.Errorf("ht: bulk read descriptor carries %d bytes, want a positive multiple of %d", len(p.Data), SpanBytes)
		}
	case CmdBulkWr:
		if len(p.Data) != p.Count {
			return fmt.Errorf("ht: bulk write frame carries %d bytes, count says %d", len(p.Data), p.Count)
		}
	case CmdBulkCopy:
		if len(p.Data) < CopyHeaderBytes+SpanBytes || (len(p.Data)-CopyHeaderBytes)%SpanBytes != 0 {
			return fmt.Errorf("ht: bulk copy descriptor carries %d bytes, want header plus spans", len(p.Data))
		}
	}
	return nil
}
