package ht

import (
	"fmt"
	"sort"

	"repro/internal/addr"
)

// BAR is one base-address-register entry: requests whose address falls in
// Range are forwarded to Unit. The set of BARs at each processor is
// configured at initialization to reflect the physical memory
// distribution (paper Section III-B).
type BAR struct {
	Range addr.Range
	Unit  UnitID
}

// RoutingTable is the ordered BAR set a processor consults to forward a
// memory operation. Entries must not overlap.
type RoutingTable struct {
	bars []BAR
}

// AddBAR installs an entry. It rejects overlaps: two claimants for one
// address would make forwarding nondeterministic.
func (t *RoutingTable) AddBAR(b BAR) error {
	if b.Range.Size == 0 {
		return fmt.Errorf("ht: empty BAR for unit %d", b.Unit)
	}
	if b.Unit >= MaxUnits {
		return fmt.Errorf("ht: BAR names unit %d beyond the chain limit", b.Unit)
	}
	for _, e := range t.bars {
		if e.Range.Overlaps(b.Range) {
			return fmt.Errorf("ht: BAR %v overlaps existing %v", b.Range, e.Range)
		}
	}
	t.bars = append(t.bars, b)
	sort.Slice(t.bars, func(i, j int) bool { return t.bars[i].Range.Start < t.bars[j].Range.Start })
	return nil
}

// Route returns the unit owning the address, performing the BAR
// comparison a processor does before generating the HT message.
func (t *RoutingTable) Route(a addr.Phys) (UnitID, error) {
	// Binary search over the sorted, non-overlapping entries.
	i := sort.Search(len(t.bars), func(i int) bool { return t.bars[i].Range.End() > a })
	if i < len(t.bars) && t.bars[i].Range.Contains(a) {
		return t.bars[i].Unit, nil
	}
	return 0, fmt.Errorf("ht: no BAR claims address %v", a)
}

// Len returns the number of installed BARs.
func (t *RoutingTable) Len() int { return len(t.bars) }

// BARs returns a copy of the installed entries in address order.
func (t *RoutingTable) BARs() []BAR {
	out := make([]BAR, len(t.bars))
	copy(out, t.bars)
	return out
}

// BuildNodeTable constructs the standard routing table of one node:
// local memory is interleaved across the sockets' memory controllers
// (units 0..sockets-1), and everything carrying a node prefix is claimed
// by the RMC unit. This is the Figure 2(b) configuration.
func BuildNodeTable(sockets int, memEach uint64, clusterNodes int, rmcUnit UnitID) (*RoutingTable, error) {
	if sockets < 1 {
		return nil, fmt.Errorf("ht: %d sockets", sockets)
	}
	if memEach%uint64(sockets) != 0 {
		return nil, fmt.Errorf("ht: %d bytes not divisible across %d sockets", memEach, sockets)
	}
	t := &RoutingTable{}
	per := memEach / uint64(sockets)
	for s := 0; s < sockets; s++ {
		b := BAR{Range: addr.Range{Start: addr.Phys(uint64(s) * per), Size: per}, Unit: UnitID(s)}
		if err := t.AddBAR(b); err != nil {
			return nil, err
		}
	}
	if clusterNodes > 0 {
		// One contiguous BAR covers every prefixed node segment: the RMC
		// needs no per-node entries because the prefix itself routes.
		span := addr.Range{
			Start: addr.NodeBase(1),
			Size:  uint64(clusterNodes) * addr.LocalSpace,
		}
		if err := t.AddBAR(BAR{Range: span, Unit: rmcUnit}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// SocketOf returns which socket's memory controller owns a local address
// under the BuildNodeTable layout.
func SocketOf(a addr.Phys, sockets int, memEach uint64) (int, error) {
	if !a.IsLocal() {
		return 0, fmt.Errorf("ht: %v is not a local address", a)
	}
	if uint64(a) >= memEach {
		return 0, fmt.Errorf("ht: %v beyond installed memory", a)
	}
	per := memEach / uint64(sockets)
	return int(uint64(a) / per), nil
}
