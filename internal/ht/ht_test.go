package ht

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestCommandClassification(t *testing.T) {
	cases := []struct {
		cmd      Command
		req, rsp bool
	}{
		{CmdRdSized, true, false},
		{CmdWrSized, true, false},
		{CmdRdResponse, false, true},
		{CmdTgtDone, false, true},
	}
	for _, c := range cases {
		if c.cmd.IsRequest() != c.req || c.cmd.IsResponse() != c.rsp {
			t.Errorf("%v: IsRequest=%v IsResponse=%v", c.cmd, c.cmd.IsRequest(), c.cmd.IsResponse())
		}
	}
	if Command(99).String() == "" {
		t.Error("unknown command should still render")
	}
}

func TestResponseConstruction(t *testing.T) {
	rd := Packet{Cmd: CmdRdSized, SrcUnit: 3, SrcTag: 42, Addr: 0x1000, Count: 64}
	data := make([]byte, 64)
	rsp := rd.Response(data)
	if rsp.Cmd != CmdRdResponse || rsp.SrcUnit != 3 || rsp.SrcTag != 42 || len(rsp.Data) != 64 {
		t.Errorf("read response malformed: %v", rsp)
	}
	if err := rsp.Validate(); err != nil {
		t.Errorf("read response invalid: %v", err)
	}

	wr := Packet{Cmd: CmdWrSized, SrcUnit: 1, SrcTag: 7, Addr: 0x2000, Count: 8, Data: make([]byte, 8)}
	ack := wr.Response(nil)
	if ack.Cmd != CmdTgtDone || ack.SrcTag != 7 {
		t.Errorf("write ack malformed: %v", ack)
	}
}

func TestResponseOnResponsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Response on a response did not panic")
		}
	}()
	Packet{Cmd: CmdTgtDone}.Response(nil)
}

func TestValidate(t *testing.T) {
	good := Packet{Cmd: CmdRdSized, SrcUnit: 0, Addr: 0x100, Count: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("valid packet rejected: %v", err)
	}
	bad := []Packet{
		{Cmd: Command(0)},
		{Cmd: CmdRdSized, SrcUnit: MaxUnits, Addr: 0x100, Count: 64},
		{Cmd: CmdRdSized, Addr: 0x100, Count: 0},
		{Cmd: CmdRdSized, Addr: addr.Phys(1) << addr.TotalBits, Count: 64},
		{Cmd: CmdWrSized, Addr: 0x100, Count: 64, Data: make([]byte, 8)},
		{Cmd: CmdRdResponse, Count: 64, Data: make([]byte, 8)},
		{Cmd: CmdRdSized, Addr: 0x100, Count: 64, Posted: true},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid packet %d accepted: %v", i, p)
		}
	}
}

func TestFlitBytes(t *testing.T) {
	p := Packet{Cmd: CmdRdSized, Addr: 0x0, Count: 64}
	if got := p.FlitBytes(); got != 8 {
		t.Errorf("header-only packet = %d bytes, want 8", got)
	}
	p.Data = make([]byte, 64)
	if got := p.FlitBytes(); got != 72 {
		t.Errorf("64B payload packet = %d bytes, want 72", got)
	}
	p.Data = make([]byte, 5)
	if got := p.FlitBytes(); got != 16 {
		t.Errorf("5B payload packet = %d bytes, want 16 (4B granularity)", got)
	}
}

func TestRoutingTableBasics(t *testing.T) {
	var rt RoutingTable
	if err := rt.AddBAR(BAR{Range: addr.Range{Start: 0, Size: 0x1000}, Unit: 0}); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddBAR(BAR{Range: addr.Range{Start: 0x1000, Size: 0x1000}, Unit: 1}); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddBAR(BAR{Range: addr.Range{Start: 0x800, Size: 0x100}, Unit: 2}); err == nil {
		t.Error("overlapping BAR accepted")
	}
	if err := rt.AddBAR(BAR{Range: addr.Range{Start: 0x9000, Size: 0}, Unit: 2}); err == nil {
		t.Error("empty BAR accepted")
	}
	if err := rt.AddBAR(BAR{Range: addr.Range{Start: 0x9000, Size: 4}, Unit: MaxUnits}); err == nil {
		t.Error("out-of-range unit accepted")
	}
	if u, err := rt.Route(0xfff); err != nil || u != 0 {
		t.Errorf("Route(0xfff) = %d, %v", u, err)
	}
	if u, err := rt.Route(0x1000); err != nil || u != 1 {
		t.Errorf("Route(0x1000) = %d, %v", u, err)
	}
	if _, err := rt.Route(0x2000); err == nil {
		t.Error("unclaimed address routed")
	}
	if rt.Len() != 2 || len(rt.BARs()) != 2 {
		t.Error("BAR bookkeeping wrong")
	}
}

func TestBuildNodeTable(t *testing.T) {
	// 4 sockets × 4 GB, 16-node cluster, RMC at unit 8 — the prototype.
	rt, err := BuildNodeTable(4, 16<<30, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Local address in the second socket's range.
	if u, err := rt.Route(addr.Phys(5 << 30)); err != nil || u != 1 {
		t.Errorf("Route(5GB) = %d, %v; want socket 1", u, err)
	}
	// Any prefixed address goes to the RMC.
	if u, err := rt.Route(addr.Phys(0x100).WithNode(13)); err != nil || u != 8 {
		t.Errorf("prefixed route = %d, %v; want RMC unit 8", u, err)
	}
	// Address beyond the cluster is unclaimed.
	if _, err := rt.Route(addr.Phys(0x100).WithNode(17)); err == nil {
		t.Error("address beyond cluster claimed")
	}
}

func TestBuildNodeTableErrors(t *testing.T) {
	if _, err := BuildNodeTable(0, 16<<30, 16, 8); err == nil {
		t.Error("zero sockets accepted")
	}
	if _, err := BuildNodeTable(3, 16<<30, 16, 8); err == nil {
		t.Error("non-divisible memory accepted")
	}
}

func TestRouteMatchesSocketOfProperty(t *testing.T) {
	rt, err := BuildNodeTable(4, 16<<30, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint64) bool {
		a := addr.Phys(raw % (16 << 30))
		u, err := rt.Route(a)
		if err != nil {
			return false
		}
		s, err := SocketOf(a, 4, 16<<30)
		if err != nil {
			return false
		}
		return int(u) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSocketOfErrors(t *testing.T) {
	if _, err := SocketOf(addr.Phys(0x100).WithNode(2), 4, 1<<30); err == nil {
		t.Error("prefixed address accepted")
	}
	if _, err := SocketOf(addr.Phys(2<<30), 4, 1<<30); err == nil {
		t.Error("beyond-memory address accepted")
	}
}
