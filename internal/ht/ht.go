// Package ht models the HyperTransport transaction layer used inside one
// node: the packet vocabulary processors and devices exchange (sized
// reads/writes and their responses), unit identifiers, and the BAR-style
// routing performed when a processor issues a memory operation.
//
// HyperTransport proper addresses at most 32 devices; inter-node traffic
// therefore travels on the High Node Count extension (package hnc), and
// the RMC bridges between the two, as the prototype's FPGA does.
package ht

import (
	"fmt"

	"repro/internal/addr"
)

// Command is a HyperTransport packet command.
type Command uint8

// The subset of HT commands the memory path uses.
const (
	// CmdRdSized requests a sized (byte/doubleword) read.
	CmdRdSized Command = iota + 1
	// CmdWrSized carries a sized posted/non-posted write.
	CmdWrSized
	// CmdRdResponse returns read data to the requester.
	CmdRdResponse
	// CmdTgtDone acknowledges completion of a non-posted write.
	CmdTgtDone
	// CmdTgtAbort signals that the target refused the transaction —
	// HyperTransport's Target Abort, used by the RMC's protection check
	// when a node touches memory never granted to it.
	CmdTgtAbort
)

// String names the command mnemonic.
func (c Command) String() string {
	switch c {
	case CmdRdSized:
		return "RdSized"
	case CmdWrSized:
		return "WrSized"
	case CmdRdResponse:
		return "RdResponse"
	case CmdTgtDone:
		return "TgtDone"
	case CmdTgtAbort:
		return "TgtAbort"
	case CmdBulkRd:
		return "BulkRd"
	case CmdBulkWr:
		return "BulkWr"
	case CmdBulkCopy:
		return "BulkCopy"
	default:
		return fmt.Sprintf("Command(%d)", uint8(c))
	}
}

// IsRequest reports whether the command opens a transaction. The bulk
// commands count: they route by Addr and the bridge zeroes their node
// prefix exactly like the sized subset.
func (c Command) IsRequest() bool {
	switch c {
	case CmdRdSized, CmdWrSized, CmdBulkRd, CmdBulkWr, CmdBulkCopy:
		return true
	}
	return false
}

// IsResponse reports whether the command closes a transaction.
func (c Command) IsResponse() bool {
	return c == CmdRdResponse || c == CmdTgtDone || c == CmdTgtAbort
}

// UnitID identifies an HT unit within one node's chain (max 32 units —
// the limitation that forces the HNC extension for inter-node traffic).
type UnitID uint8

// MaxUnits is HyperTransport's per-chain device limit.
const MaxUnits = 32

// Packet is one HT transaction-layer packet. Data is carried by
// reference; the functional memory system fills it in.
type Packet struct {
	Cmd Command
	// SrcUnit is the issuing unit; responses are routed back to it.
	SrcUnit UnitID
	// SrcTag matches a response to its outstanding request (per-unit).
	SrcTag uint16
	// Addr is the target physical address (requests only).
	Addr addr.Phys
	// Count is the transfer size in bytes (requests only).
	Count int
	// Posted marks a write that expects no TgtDone.
	Posted bool
	// Data carries write payload or read response data.
	Data []byte
}

// Abort constructs the Target Abort response to a request.
func (p Packet) Abort() Packet {
	if !p.Cmd.IsRequest() {
		panic(fmt.Sprintf("ht: Abort on non-request packet %v", p.Cmd))
	}
	return Packet{Cmd: CmdTgtAbort, SrcUnit: p.SrcUnit, SrcTag: p.SrcTag, Addr: p.Addr}
}

// Response constructs the response packet that closes the transaction.
// RdSized yields RdResponse carrying data; WrSized yields TgtDone.
func (p Packet) Response(data []byte) Packet {
	switch p.Cmd {
	case CmdRdSized:
		return Packet{Cmd: CmdRdResponse, SrcUnit: p.SrcUnit, SrcTag: p.SrcTag, Addr: p.Addr, Count: p.Count, Data: data}
	case CmdWrSized:
		return Packet{Cmd: CmdTgtDone, SrcUnit: p.SrcUnit, SrcTag: p.SrcTag, Addr: p.Addr}
	default:
		panic(fmt.Sprintf("ht: Response on non-request packet %v", p.Cmd))
	}
}

// Validate reports the first protocol violation in the packet.
func (p Packet) Validate() error {
	switch {
	case !p.Cmd.IsRequest() && !p.Cmd.IsResponse():
		return fmt.Errorf("ht: unknown command %v", p.Cmd)
	case p.SrcUnit >= MaxUnits:
		return fmt.Errorf("ht: unit id %d exceeds the %d-unit chain limit", p.SrcUnit, MaxUnits)
	case p.Cmd.IsRequest() && p.Count <= 0:
		return fmt.Errorf("ht: request with count %d", p.Count)
	case p.Cmd.IsRequest() && !p.Addr.Valid():
		return fmt.Errorf("ht: request address %v out of range", p.Addr)
	case p.Cmd == CmdWrSized && p.Data != nil && len(p.Data) != p.Count:
		return fmt.Errorf("ht: write carries %d bytes, count says %d", len(p.Data), p.Count)
	case p.Cmd == CmdRdResponse && len(p.Data) != p.Count:
		return fmt.Errorf("ht: read response carries %d bytes, count says %d", len(p.Data), p.Count)
	case p.Posted && p.Cmd != CmdWrSized:
		return fmt.Errorf("ht: only writes can be posted")
	}
	return p.validateBulk()
}

// FlitBytes returns the packet's wire size in bytes: a 8-byte command
// header plus the data payload, rounded up to 4-byte granularity. Used by
// link-occupancy models. A sized write without an attached payload slice
// (an idempotent line write the simulator prices but does not copy) still
// occupies Count bytes on the wire.
func (p Packet) FlitBytes() int {
	n := 8 + len(p.Data)
	if p.Cmd == CmdWrSized && p.Data == nil {
		n += p.Count
	}
	if r := n % 4; r != 0 {
		n += 4 - r
	}
	return n
}

func (p Packet) String() string {
	return fmt.Sprintf("%v{unit=%d tag=%d addr=%v count=%d}", p.Cmd, p.SrcUnit, p.SrcTag, p.Addr, p.Count)
}
