// Memory-hungry application: a canneal-style workload whose dataset
// dwarfs one node's memory — the class of application the paper is
// built for. The same kernel runs under the three memory configurations
// of Figure 11: an (idealized) machine with everything local, the
// prototype's remote memory, and remote swap. The scattered access
// pattern gives swap essentially no locality to amortize faults with,
// while the RMC pays a flat ~1 µs per miss and stays feasible.
package main

import (
	"fmt"
	"log"

	"repro/internal/memmodel"
	"repro/internal/params"
	"repro/internal/workloads"
)

func main() {
	p := params.Default()

	fmt.Println("canneal-style memory-hungry kernel (simulated annealing of a netlist)")
	k := workloads.Canneal(p)
	fmt.Printf("  footprint:   %d MB (local memory available to the swapped dataset: %d MB)\n",
		k.Footprint>>20, workloads.ScaleRef(p)>>20)
	fmt.Printf("  accesses:    %d scattered reads/writes\n\n", k.Accesses)

	type row struct {
		cfg  memmodel.Config
		res  workloads.Result
		hitR float64
	}
	var rows []row
	for _, cfg := range []memmodel.Config{
		memmodel.ConfigLocal, memmodel.ConfigRemote, memmodel.ConfigRemoteSwap, memmodel.ConfigDiskSwap,
	} {
		base, err := memmodel.Build(cfg, p, 1, p.SwapResidentPages)
		if err != nil {
			log.Fatal(err)
		}
		cached, err := memmodel.NewLineCached(base, p, memmodel.DefaultCacheLines)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{cfg, k.Run(cached, 1), cached.HitRate()})
	}

	fmt.Printf("%-16s %14s %14s %12s\n", "configuration", "memory (ms)", "total (ms)", "cache hits")
	base := rows[0].res.Total()
	for _, r := range rows {
		fmt.Printf("%-16s %14.1f %14.1f %11.0f%%   (%.0fx local)\n",
			r.cfg.String(),
			float64(r.res.MemTime)/float64(params.Millisecond),
			float64(r.res.Total())/float64(params.Millisecond),
			r.hitR*100,
			float64(r.res.Total())/float64(base))
	}

	fmt.Println("\nthe prototype runs the dataset it cannot hold locally at a single-digit")
	fmt.Println("multiple of the all-local ideal; both swap variants are off the chart,")
	fmt.Println("because Equation (1)'s locality term has collapsed to ~1 access per page.")
}
