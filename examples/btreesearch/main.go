// B-tree search: the paper's database scenario (Section V-B). An index
// too big for one node is stored once and searched under three memory
// configurations — all-local, the prototype's remote memory, and remote
// swap — showing why an in-memory index over RMC-attached memory
// tolerates the cache-hostile access pattern that makes swap thrash,
// and how the swap-optimal fanout is the one that fills a 4 KiB page.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/btree"
	"repro/internal/memmodel"
	"repro/internal/params"
	"repro/internal/swap"
)

func main() {
	p := params.Default()
	const (
		nKeys    = 500_000
		searches = 20_000
		resident = 256 // pages of local memory left for the swapped index
	)

	fmt.Printf("index: %d random keys; %d random searches per configuration\n\n", nKeys, searches)

	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, 0, nKeys)
	seen := make(map[uint64]bool, nKeys)
	for len(keys) < nKeys {
		k := uint64(rng.Int63n(nKeys * 4))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}

	fmt.Println("fanout sweep under remote swap (the paper's Figure 9):")
	bestFanout, bestTime := 0, params.Duration(0)
	for _, fanout := range []int{32, 96, 168, 256, 512} {
		tr, err := btree.New(fanout)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.BulkLoad(keys); err != nil {
			log.Fatal(err)
		}
		sw, err := memmodel.NewSwap(p, swap.RemoteDevice{P: p, Hops: 1}, resident)
		if err != nil {
			log.Fatal(err)
		}
		perSearch := sweep(tr, sw, searches)
		fmt.Printf("  fanout %4d (node %5d B, depth %d): %8.1f µs/search\n",
			fanout, btree.NodeBytes(fanout), tr.Depth(), us(perSearch))
		if bestFanout == 0 || perSearch < bestTime {
			bestFanout, bestTime = fanout, perSearch
		}
	}
	fmt.Printf("  -> optimum at fanout %d: one node fills one %d B page\n\n", bestFanout, params.PageSize)

	tr, err := btree.New(bestFanout)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.BulkLoad(keys); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("comparing configurations at fanout %d (index footprint %.1f MB, local residency %.1f MB):\n",
		bestFanout, float64(tr.FootprintBytes())/float64(1<<20), float64(resident*params.PageSize)/float64(1<<20))

	sw, err := memmodel.NewSwap(p, swap.RemoteDevice{P: p, Hops: 1}, resident)
	if err != nil {
		log.Fatal(err)
	}
	configs := []memmodel.Accessor{
		memmodel.Local{P: p},
		memmodel.Remote{P: p, Hops: 1},
		sw,
	}
	var remote, swapT params.Duration
	for _, acc := range configs {
		perSearch := sweep(tr, acc, searches)
		fmt.Printf("  %-14s %10.1f µs/search\n", acc.Name()+":", us(perSearch))
		switch acc.Name() {
		case "remote memory":
			remote = perSearch
		case "remote-swap":
			swapT = perSearch
		}
	}
	fmt.Printf("\nremote memory beats remote swap by %.0fx on this index —\n", float64(swapT)/float64(remote))
	fmt.Println("Equation (2) has no locality term; Equation (1) is all locality.")
}

// sweep prices searches through the batched fast path (identical costs
// to scalar Search; see DESIGN.md §12).
func sweep(tr *btree.Tree, acc memmodel.Accessor, searches int) params.Duration {
	rng := rand.New(rand.NewSource(7))
	var b memmodel.Batcher
	var total params.Duration
	for i := 0; i < searches; i++ {
		_, cost, _ := tr.SearchBatch(uint64(rng.Int63n(int64(tr.Size)*4)), acc, &b)
		total += cost
	}
	return params.Duration(float64(total) / float64(searches))
}

func us(d params.Duration) float64 { return float64(d) / float64(params.Microsecond) }
