// Database: the paper's short-term objective made concrete — "store
// indexes or the entire database in memory, and then study the execution
// time for different queries." A key-value table (B-tree index + rows)
// lives entirely in one region's memory, spilling past the node's
// private zone onto donor nodes; the same point, range, and aggregate
// queries are then priced under the three memory configurations.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/memmodel"
	"repro/internal/params"
	"repro/internal/swap"
)

func main() {
	p := params.Default()
	p.MemPerNode = 512 << 20
	p.PrivateMemPerNode = 64 << 20
	p.OSReserveBytes = 8 << 20 // a deliberately small node: the DB must spill
	sys, err := core.NewSystem(p)
	if err != nil {
		log.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		log.Fatal(err)
	}

	table, err := db.Create(region, "orders", 0)
	if err != nil {
		log.Fatal(err)
	}
	const rows = 120_000
	fmt.Printf("loading %d orders of ~1 KB each into table %q...\n", rows, table.Name())
	row := make([]byte, 1024)
	for k := uint64(0); k < rows; k++ {
		copy(row, fmt.Sprintf("order %08d: 3 items, priority %d", k, k%5))
		if err := table.Put(k, row); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("table footprint: %d MB; node private memory: %d MB; borrowed: %d MB\n\n",
		table.FootprintBytes()>>20, p.PrivateMemPerNode>>20,
		region.Agent().BorrowedBytes()>>20)

	accessors := []memmodel.Accessor{
		memmodel.Local{P: p},
		memmodel.Remote{P: p, Hops: 1},
	}
	sw, err := memmodel.NewSwap(p, swap.RemoteDevice{P: p, Hops: 1}, p.SwapResidentPages)
	if err != nil {
		log.Fatal(err)
	}
	accessors = append(accessors, sw)
	// And the region's true layout: the local slice priced local, each
	// donor's slice priced at its real mesh distance. The index's modeled
	// address space (starting at 0, below the region's heap base) gets
	// its own stripe at one hop.
	layout, err := region.Accessor()
	if err != nil {
		log.Fatal(err)
	}
	stripes := append(layout.Stripes(), memmodel.Stripe{
		Start: 0, Size: table.Index().FootprintBytes(), Acc: memmodel.Remote{P: p, Hops: 1},
	})
	composite, err := memmodel.NewStriped(p, stripes)
	if err != nil {
		log.Fatal(err)
	}
	accessors = append(accessors, composite)

	fmt.Printf("%-15s %18s %18s %18s\n", "configuration", "point query (µs)", "range 1000 (ms)", "count 10k (ms)")
	for _, acc := range accessors {
		var point params.Duration
		const probes = 500
		for i := 0; i < probes; i++ {
			_, found, c, err := table.Get(uint64(i*211)%rows, acc)
			if err != nil || !found {
				log.Fatalf("point query failed: %v %v", found, err)
			}
			point += c
		}
		_, rangeCost, err := table.Scan(50_000, 51_000, acc)
		if err != nil {
			log.Fatal(err)
		}
		_, countCost := table.Count(40_000, 50_000, acc)
		fmt.Printf("%-15s %18.1f %18.2f %18.2f\n", acc.Name(),
			float64(point)/probes/float64(params.Microsecond),
			float64(rangeCost)/float64(params.Millisecond),
			float64(countCost)/float64(params.Millisecond))
	}

	// The bulk data plane's answer to the range scan: with a bulk pricer
	// set, Scan and Count read the table's columnar key/pointer segments
	// through scatter-gather bursts instead of walking the index line by
	// line (DESIGN.md §14).
	bulk, err := memmodel.NewBulkModel(p, 1)
	if err != nil {
		log.Fatal(err)
	}
	table.SetBulkPricer(bulk)
	_, bulkRange, err := table.Scan(50_000, 51_000, memmodel.Remote{P: p, Hops: 1})
	if err != nil {
		log.Fatal(err)
	}
	_, bulkCount := table.Count(40_000, 50_000, memmodel.Remote{P: p, Hops: 1})
	table.SetBulkPricer(nil)
	fmt.Printf("%-15s %18s %18.2f %18.2f\n", bulk.Name(), "—",
		float64(bulkRange)/float64(params.Millisecond),
		float64(bulkCount)/float64(params.Millisecond))

	fmt.Println("\nthe locality dichotomy of Equations (1)/(2), live: scattered point")
	fmt.Println("queries are ~4x worse on swap than on the RMC (every probe faults),")
	fmt.Println("while warm sequential range scans amortize faults so well that swap")
	fmt.Println("can even win them — and either way, the whole database lives in")
	fmt.Println("memory no single node has. The bulk row goes further: columnar")
	fmt.Println("segments fetched in scatter-gather bursts beat even the local")
	fmt.Println("index walk, without moving a single row onto the node.")
}
