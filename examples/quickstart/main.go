// Quickstart: build the 16-node prototype, let one node's process
// allocate far more memory than its motherboard holds, and show that
// ordinary reads and writes reach the borrowed frames — with the
// simulated access timing to prove nothing but hardware is on the path.
package main

import (
	"fmt"
	"log"

	ncdsm "repro"
)

func main() {
	// The paper's machine: 4×4 mesh, 16 GB per node, of which 8 GB per
	// node feed a 128 GB cluster-wide pool.
	sys, err := ncdsm.New(ncdsm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ncdsm.Describe(sys.Config()))

	// A process on node 1. Its region starts with the node's private
	// 8 GB and grows transparently: malloc spills to other nodes once
	// local memory runs out.
	region, err := sys.Region(1)
	if err != nil {
		log.Fatal(err)
	}
	region.SetPlacement(ncdsm.PlacementNearest)

	fmt.Printf("\nallocating 3 x 10 GB on a 16 GB node...\n")
	var ptrs []ncdsm.Pointer
	for i := 0; i < 3; i++ {
		ptr, err := region.Malloc(10 << 30)
		if err != nil {
			log.Fatal(err)
		}
		owner, err := region.Owner(ptr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  allocation %d: pointer %#x, first byte lives on node %d\n", i+1, uint64(ptr), owner)
		ptrs = append(ptrs, ptr)
	}
	fmt.Printf("region now spans %d GB (%d GB borrowed); pool has %d GB left\n",
		region.EffectiveMemory()>>30, region.BorrowedBytes()>>30, sys.PoolFree()>>30)

	// Ordinary data access, across nodes, fully transparent.
	msg := []byte("written through the RMC, no OS in sight")
	if err := region.Write(ptrs[2]+5<<30, msg); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if err := region.Read(ptrs[2]+5<<30, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround trip through borrowed memory: %q\n", buf)

	// And the timed path: one load against local vs borrowed memory.
	// Access is batch-first — a workload hands the memory system its
	// whole access list; a single load is just a batch of one.
	measure := func(p ncdsm.Pointer, what string) {
		start := sys.Now()
		var done ncdsm.Time
		batch := []ncdsm.AccessRequest{
			{Now: start, Pointer: p, Done: func(t ncdsm.Time) { done = t }},
		}
		if err := region.AccessBatch(batch); err != nil {
			log.Fatal(err)
		}
		sys.Run()
		fmt.Printf("  %-22s %6.2f µs\n", what, float64(done-start)/1e6)
	}
	fmt.Println("\nsimulated access latency (cold):")
	measure(ptrs[0], "local allocation:")
	measure(ptrs[2]+6<<30, "borrowed allocation:")
	fmt.Println("\nthe gap is the fabric round trip — not a page fault, not a syscall.")

	// Scan-shaped work doesn't pay that round trip per line: the bulk
	// data plane (DESIGN.md §14) moves whole spans in doorbell-batched
	// bursts — one descriptor, multi-line data frames, one ack.
	bulkStart := sys.Now()
	var bulkEnd ncdsm.Time
	sink := make([]byte, 4<<10)
	err = region.ReadBulk(ptrs[2]+6<<30, []ncdsm.Span{{Bytes: 4 << 10}}, sink,
		func(t ncdsm.Time, err error) {
			if err != nil {
				log.Fatal(err)
			}
			bulkEnd = t
		})
	if err != nil {
		log.Fatal(err)
	}
	sys.Run()
	fmt.Printf("\nbulk read, 4 KiB borrowed (64 lines, one burst): %.2f µs\n",
		float64(bulkEnd-bulkStart)/1e6)

	// Everything above left a trail in the metrics layer: per-node RMC
	// traffic, mesh link frames, cache and DRAM counters.
	snap := sys.Metrics()
	fmt.Printf("\ncluster metrics: RMCs observed %d remote request(s)\n",
		uint64(snap.Total("ncdsm_rmc_requests_total")))
}
