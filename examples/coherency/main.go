// Coherency overhead: the experiment behind the paper's title. A line
// of data is read by a growing number of nodes and then written. Under
// a cluster-wide coherent DSM (the 3Leaf/ScaleMP approach) the write
// must invalidate every remote copy, so its cost grows with the sharer
// count. Under the RMC architecture the same aggregate memory never has
// remote cached copies — the coherency domain stops at the motherboard —
// so the write costs the flat fabric round trip no matter how many nodes
// contribute memory. The example also shows the paper's concession: to
// run multi-threaded over writable remote data, the prototype must flush
// and fall back to read-only parallel phases.
package main

import (
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/cohdsm"
	"repro/internal/params"
)

func main() {
	p := params.Default()

	fmt.Println("write latency vs number of nodes holding the data (64 lines averaged)")
	fmt.Printf("%-10s %22s %24s\n", "sharers", "coherent DSM (µs)", "non-coherent RMC (µs)")
	rmcWrite := p.RemoteRoundTrip(1) // flat: no sharers exist, by design
	for _, sharers := range []int{1, 2, 4, 8, 15} {
		m, err := cohdsm.New(p, 16)
		if err != nil {
			log.Fatal(err)
		}
		var total params.Duration
		const lines = 64
		for l := uint64(0); l < lines; l++ {
			for s := 0; s < sharers; s++ {
				if _, err := m.Access(s, l, false); err != nil {
					log.Fatal(err)
				}
			}
			lat, err := m.Access(15, l, true)
			if err != nil {
				log.Fatal(err)
			}
			total += lat
		}
		fmt.Printf("%-10d %22.2f %24.2f\n", sharers,
			float64(total)/lines/float64(params.Microsecond),
			float64(rmcWrite)/float64(params.Microsecond))
	}

	fmt.Println("\nwhat the RMC gives up: intra-node writers must not share remote lines")
	fmt.Println("across nodes, so parallel phases over writable remote data are illegal.")
	fmt.Println("the prototype's discipline is: write serially, flush, then read in parallel:")

	h, err := cache.NewHierarchy(p.SocketsPerNode, cache.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// Write phase: one core fills 1024 remote lines (they cache dirty).
	for i := 0; i < 1024; i++ {
		if _, err := h.Access(0, lineAddr(i), true); err != nil {
			log.Fatal(err)
		}
	}
	dirty := h.FlushAll()
	fmt.Printf("  write phase: 1024 lines written by one core; flush pushed %d dirty lines to the owner\n", dirty)
	// Read-only phase: all four sockets stream the data concurrently.
	probes := 0
	for s := 0; s < p.SocketsPerNode; s++ {
		for i := 0; i < 1024; i++ {
			r, err := h.Access(s, lineAddr(i), false)
			if err != nil {
				log.Fatal(err)
			}
			probes += r.Probes
		}
	}
	fmt.Printf("  read-only phase: 4 sockets x 1024 reads, %d coherency probes inside the node,\n", probes)
	fmt.Println("  and zero coherency messages on the cluster fabric — that is the whole point.")
}

// lineAddr returns the i-th remote line of a buffer owned by node 2.
func lineAddr(i int) addr.Phys {
	return addr.Phys(uint64(i) * 64).WithNode(2)
}
