GO ?= go

.PHONY: check build vet fmt test race bench fuzz

check: fmt vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting (CI runs the same gate).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

test:
	$(GO) test ./...

# The harness's concurrency surface: the worker pool itself, the
# experiment generators that fan out over it (including the chaos tests,
# which run fault-plan sweeps at -parallel 8), and the engine they drive.
race:
	$(GO) test -race ./internal/runner/ ./internal/experiments/ ./internal/sim/ ./internal/faults/

bench:
	$(GO) test -bench=. -benchmem

# Short fuzz passes over the parsers of untrusted input: the trace
# reader, and the HNC frame integrity check that the fault injector's
# corrupted frames must never slip past. CI runs the same 10-second
# smokes.
fuzz:
	$(GO) test -fuzz=FuzzReader -fuzztime=10s -run='^$$' ./internal/trace
	$(GO) test -fuzz=FuzzFrameIntegrity -fuzztime=10s -run='^$$' ./internal/hnc
