GO ?= go

.PHONY: check build vet test race bench

check: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The harness's concurrency surface: the worker pool itself, the
# experiment generators that fan out over it, and the engine they drive.
race:
	$(GO) test -race ./internal/runner/ ./internal/experiments/ ./internal/sim/

bench:
	$(GO) test -bench=. -benchmem
