GO ?= go

.PHONY: check build vet fmt test race bench fuzz

check: fmt vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting (CI runs the same gate).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

test:
	$(GO) test ./...

# The harness's concurrency surface: the worker pool itself, the
# experiment generators that fan out over it, and the engine they drive.
race:
	$(GO) test -race ./internal/runner/ ./internal/experiments/ ./internal/sim/

bench:
	$(GO) test -bench=. -benchmem

# Short fuzz pass over the trace reader, the only parser of untrusted
# input; CI runs the same 10-second smoke.
fuzz:
	$(GO) test -fuzz=FuzzReader -fuzztime=10s -run='^$$' ./internal/trace
