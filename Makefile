GO ?= go

.PHONY: check build vet fmt test race bench perf-gate scale-bench fuzz

check: fmt vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting (CI runs the same gate).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

test:
	$(GO) test ./...

# The harness's concurrency surface: the worker pool itself, the
# experiment generators that fan out over it (including the chaos tests,
# which run fault-plan sweeps at -parallel 8), the engine they drive,
# and the consistency lab (litmus suite + checker), whose determinism
# contract CI also exercises under the race detector.
race:
	$(GO) test -race ./internal/runner/ ./internal/experiments/ ./internal/sim/ ./internal/faults/ ./internal/consistency/ ./cmd/ncdsm-cluster/

# bench runs the Go micro/macro benchmarks, then refreshes the tracked
# perf baseline (engine churn, RMC round trip, faulted fig7 sweep) in
# BENCH_sim.json. Commit the refreshed file when a hot-path change moves
# the numbers on purpose.
bench:
	$(GO) test -bench=. -benchmem
	$(GO) run ./cmd/ncdsm-perf -out BENCH_sim.json

# scale-bench sweeps GOMAXPROCS over the paper-scale sharded benchmark
# (16x16 mesh, 8 shards) and records events/sec at each worker width in
# BENCH_scale.json. Informational, not a CI gate: parallel speedup is a
# property of the host, unlike the deterministic results it produces.
scale-bench:
	$(GO) run ./cmd/ncdsm-perf -scale BENCH_scale.json

# perf-gate re-measures and fails on >20% ns/op regression (after
# calibration rescaling for host speed) or any allocs/op growth against
# the committed BENCH_sim.json. CI runs this as the perf-smoke job.
perf-gate:
	$(GO) run ./cmd/ncdsm-perf -check BENCH_sim.json

# Short fuzz passes over the parsers of untrusted input and the
# consistency lab's state machines: the trace reader, the HNC frame
# integrity check that the fault injector's corrupted frames must never
# slip past, and random litmus programs under every protocol with
# directory invariants held at every step. CI runs the same 10-second
# smokes.
fuzz:
	$(GO) test -fuzz=FuzzReader -fuzztime=10s -run='^$$' ./internal/trace
	$(GO) test -fuzz=FuzzFrameIntegrity -fuzztime=10s -run='^$$' ./internal/hnc
	$(GO) test -fuzz=FuzzLitmusProgram -fuzztime=10s -run='^$$' ./internal/consistency
