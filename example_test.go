package ncdsm_test

import (
	"fmt"
	"log"

	ncdsm "repro"
)

// Example builds the 16-node prototype, lets node 1's process allocate
// more memory than its motherboard holds, and reads it back through the
// simulated RMC path.
func Example() {
	sys, err := ncdsm.New(ncdsm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		log.Fatal(err)
	}
	region.SetPlacement(ncdsm.PlacementNearest)

	// 24 GB on a node with 8 GB of private memory: the heap borrows the
	// rest from neighbors via the reservation protocol.
	ptr, err := region.Malloc(24 << 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("borrowed %d GB from other nodes\n", region.BorrowedBytes()>>30)

	if err := region.Write(ptr+20<<30, []byte("remote bytes")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 12)
	if err := region.Read(ptr+20<<30, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %s\n", buf)
	// Output:
	// borrowed 18 GB from other nodes
	// read back: remote bytes
}

// ExampleRegion_Access issues one timed load against borrowed memory and
// reports the simulated latency: the fabric round trip, with no OS on
// the path.
func ExampleRegion_Access() {
	sys, err := ncdsm.New(ncdsm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		log.Fatal(err)
	}
	ptr, err := region.GrowFrom(2, 1<<20) // node 2 is one mesh hop away
	if err != nil {
		log.Fatal(err)
	}
	var done ncdsm.Time
	req := ncdsm.AccessRequest{Pointer: ptr, Done: func(t ncdsm.Time) { done = t }}
	if err := region.Access(req); err != nil {
		log.Fatal(err)
	}
	sys.Run()
	fmt.Printf("cold remote load: %.2f µs\n", float64(done)/1e6)
	// Output:
	// cold remote load: 0.91 µs
}

// ExampleExperiment regenerates a paper figure programmatically.
func ExampleExperiment() {
	opts := ncdsm.DefaultExperimentOptions()
	opts.Scale = 0.01
	fig, err := ncdsm.ExperimentFigure("eq", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig.ID, "has", len(fig.Series), "series")
	// Output:
	// eq has 4 series
}
