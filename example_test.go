package ncdsm_test

import (
	"fmt"
	"log"

	ncdsm "repro"
)

// Example builds the 16-node prototype, lets node 1's process allocate
// more memory than its motherboard holds, and reads it back through the
// simulated RMC path.
func Example() {
	sys, err := ncdsm.New(ncdsm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		log.Fatal(err)
	}
	region.SetPlacement(ncdsm.PlacementNearest)

	// 24 GB on a node with 8 GB of private memory: the heap borrows the
	// rest from neighbors via the reservation protocol.
	ptr, err := region.Malloc(24 << 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("borrowed %d GB from other nodes\n", region.BorrowedBytes()>>30)

	if err := region.Write(ptr+20<<30, []byte("remote bytes")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 12)
	if err := region.Read(ptr+20<<30, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %s\n", buf)
	// Output:
	// borrowed 18 GB from other nodes
	// read back: remote bytes
}

// ExampleRegion_AccessBatch hands the memory system a batch of timed
// loads against borrowed memory — the batch-first discipline: the
// workload submits its whole access list and lets the simulated
// windows and queues pipeline it. A single load is just a batch of one
// (Region.Access is sugar for exactly that).
func ExampleRegion_AccessBatch() {
	sys, err := ncdsm.New(ncdsm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		log.Fatal(err)
	}
	ptr, err := region.GrowFrom(2, 1<<20) // node 2 is one mesh hop away
	if err != nil {
		log.Fatal(err)
	}
	var last ncdsm.Time
	batch := make([]ncdsm.AccessRequest, 4)
	for i := range batch {
		batch[i] = ncdsm.AccessRequest{
			Pointer: ptr + ncdsm.Pointer(i*64),
			Done:    func(t ncdsm.Time) { last = t },
		}
	}
	if err := region.AccessBatch(batch); err != nil {
		log.Fatal(err)
	}
	sys.Run()
	fmt.Printf("4 cold remote loads drained at %.2f µs\n", float64(last)/1e6)
	// Output:
	// 4 cold remote loads drained at 2.41 µs
}

// ExampleRegion_ReadBulk gathers a 4 KiB span of borrowed memory as one
// doorbell-batched scatter-gather burst: one RMC descriptor, multi-line
// data frames, one cumulative ack — instead of 64 per-line round trips.
func ExampleRegion_ReadBulk() {
	sys, err := ncdsm.New(ncdsm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		log.Fatal(err)
	}
	ptr, err := region.GrowFrom(2, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	var done ncdsm.Time
	sink := make([]byte, 4<<10)
	err = region.ReadBulk(ptr, []ncdsm.Span{{Bytes: 4 << 10}}, sink,
		func(t ncdsm.Time, err error) {
			if err != nil {
				log.Fatal(err)
			}
			done = t
		})
	if err != nil {
		log.Fatal(err)
	}
	sys.Run()
	fmt.Printf("64 remote lines, one burst: %.2f µs\n", float64(done)/1e6)
	// Output:
	// 64 remote lines, one burst: 2.11 µs
}

// ExampleExperiment regenerates a paper figure programmatically.
func ExampleExperiment() {
	opts := ncdsm.DefaultExperimentOptions()
	opts.Scale = 0.01
	fig, err := ncdsm.ExperimentFigure("eq", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig.ID, "has", len(fig.Series), "series")
	// Output:
	// eq has 4 series
}
