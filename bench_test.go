// Benchmarks: one per table/figure of the paper's evaluation (each runs
// the full experiment generator at a reduced scale and reports the
// headline simulated metric alongside host cost), plus micro-benchmarks
// of the library's hot paths.
//
//	go test -bench=. -benchmem
package ncdsm

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/btree"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/db"
	"repro/internal/experiments"
	"repro/internal/hnc"
	"repro/internal/ht"
	"repro/internal/htoe"
	"repro/internal/memmodel"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/swap"
	"repro/internal/workloads"
)

// benchScale keeps each experiment run in the tens of milliseconds while
// preserving every shape (the shape tests in internal/experiments assert
// them at a larger scale).
const benchScale = 0.005

// benchParallel bounds concurrent sweep points inside each experiment
// (0 = all cores). go test claims the bare -parallel spelling for its
// own test.parallel, so set this one after the -args separator:
//
//	go test -bench=. -args -parallel 1
var benchParallel = flag.Int("parallel", 0, "concurrent sweep points per experiment (0 = all cores, 1 = serial)")

// runExperiment is the shared driver for the per-figure benchmarks.
func runExperiment(b *testing.B, id string, metric func(*stats.Figure) (float64, string)) {
	b.Helper()
	gen, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	o := experiments.DefaultOptions()
	o.Scale = benchScale
	o.Parallel = *benchParallel
	var fig *stats.Figure
	for i := 0; i < b.N; i++ {
		fig, err = gen(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	if metric != nil && fig != nil {
		v, unit := metric(fig)
		b.ReportMetric(v, unit)
	}
}

// lastY returns the final point of a series as the reported metric.
func lastY(series string, unit string) func(*stats.Figure) (float64, string) {
	return func(f *stats.Figure) (float64, string) {
		s := f.FindSeries(series)
		if s == nil || len(s.Points) == 0 {
			return 0, unit
		}
		return s.Points[len(s.Points)-1].Y, unit
	}
}

func BenchmarkTable1_LatencyCharacterization(b *testing.B) {
	runExperiment(b, "table1", func(f *stats.Figure) (float64, string) {
		s := f.FindSeries("measured")
		for _, p := range s.Points {
			if p.Label == "remote access, 1 hop(s) (µs)" {
				return p.Y, "sim-µs/remote-access"
			}
		}
		return 0, "sim-µs/remote-access"
	})
}

func BenchmarkFig6_LatencyVsHops(b *testing.B) {
	runExperiment(b, "fig6", lastY("remote memory (measured)", "sim-µs@6hops"))
}

func BenchmarkFig7_ClientBottleneck(b *testing.B) {
	runExperiment(b, "fig7", lastY("4 servers", "sim-ms@4t-3hops"))
}

func BenchmarkFig8_ServerCongestion(b *testing.B) {
	runExperiment(b, "fig8", lastY("control thread", "sim-ms@6nx4t"))
}

func BenchmarkFig9_BtreeFanout(b *testing.B) {
	runExperiment(b, "fig9", func(f *stats.Figure) (float64, string) {
		s := f.FindSeries("remote swap")
		best := s.Points[0]
		for _, p := range s.Points {
			if p.Y < best.Y {
				best = p
			}
		}
		return best.X, "optimal-fanout"
	})
}

func BenchmarkFig10_BtreeScalability(b *testing.B) {
	runExperiment(b, "fig10", lastY("remote swap", "sim-µs/search@max-keys"))
}

func BenchmarkFig11_Parsec(b *testing.B) {
	runExperiment(b, "fig11", func(f *stats.Figure) (float64, string) {
		var remote, rswap float64
		for _, s := range f.Series {
			for _, p := range s.Points {
				if p.Label == "canneal" {
					switch s.Name {
					case "remote memory":
						remote = p.Y
					case "remote swap":
						rswap = p.Y
					}
				}
			}
		}
		if remote == 0 {
			return 0, "canneal-swap/remote"
		}
		return rswap / remote, "canneal-swap/remote"
	})
}

func BenchmarkEq_AnalyticModels(b *testing.B) {
	runExperiment(b, "eq", nil)
}

func BenchmarkAblation_Coherency(b *testing.B) {
	runExperiment(b, "A", lastY("coherent DSM (directory MSI)", "sim-µs/write@15-sharers"))
}

func BenchmarkAblation_OutstandingWindow(b *testing.B) {
	runExperiment(b, "B", lastY("1 thread, 1 server, 1 hop", "sim-ms@window8"))
}

func BenchmarkAblation_RetryPolicy(b *testing.B) {
	runExperiment(b, "C", lastY("4 servers, 1 hop", "sim-ms@depth8"))
}

// ---- library hot-path micro-benchmarks (host cost per operation) ----

func BenchmarkSimRemoteLineRead(b *testing.B) {
	sys, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		b.Fatal(err)
	}
	ptr, err := region.GrowFrom(2, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ptr + Pointer(uint64(i)%(64<<20-64))
		if err := region.Access(AccessRequest{Now: sys.Now(), Pointer: p}); err != nil {
			b.Fatal(err)
		}
		sys.Run()
	}
}

func BenchmarkFunctionalCrossNodeWrite(b *testing.B) {
	sys, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		b.Fatal(err)
	}
	ptr, err := region.GrowFrom(9, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := region.Write(ptr+Pointer(uint64(i*64)%(64<<20-64)), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBtreeSearchRemote(b *testing.B) {
	p := params.Default()
	tr, err := btree.New(168)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]uint64, 200000)
	for i := range keys {
		keys[i] = uint64(i) * 2
	}
	if err := tr.BulkLoad(keys); err != nil {
		b.Fatal(err)
	}
	acc := memmodel.Remote{P: p, Hops: 1}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	var cost params.Duration
	for i := 0; i < b.N; i++ {
		_, c, _ := tr.Search(uint64(rng.Intn(400000)), acc)
		cost += c
	}
	b.ReportMetric(float64(cost)/float64(b.N)/1e6, "sim-µs/search")
}

func BenchmarkCacheAccessMESI(b *testing.B) {
	h, err := cache.NewHierarchy(4, cache.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Access(i%4, addr.Phys(uint64(i)*64%(1<<20)), i%5 == 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageCacheTouch(b *testing.B) {
	c, err := swap.NewPageCache(2048)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Touch(uint64(i*7919)%8192, i%8 == 0)
	}
}

func BenchmarkMallocFree(b *testing.B) {
	sys, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, err := region.Malloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := region.Free(ptr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrefixRoute(b *testing.B) {
	rt, err := ht.BuildNodeTable(4, 16<<30, 16, 8)
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]addr.Phys, 256)
	for i := range addrs {
		if i%2 == 0 {
			addrs[i] = addr.Phys(uint64(i) << 20)
		} else {
			addrs[i] = addr.Phys(uint64(i) << 16).WithNode(addr.NodeID(i%16 + 1))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Route(addrs[i%len(addrs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelCanneal(b *testing.B) {
	p := params.Default()
	p.SwapResidentPages = 256
	k := workloads.Canneal(p)
	acc := memmodel.Remote{P: p, Hops: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := k.Run(acc, int64(i))
		b.ReportMetric(float64(res.Total())/1e9, "sim-ms/run")
	}
}

func BenchmarkThreadedRandomAccess(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := New(DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				region, err := sys.Region(1)
				if err != nil {
					b.Fatal(err)
				}
				core := sys.Core()
				rng, err := region.GrowFrom(2, 64<<20)
				if err != nil {
					b.Fatal(err)
				}
				_ = rng
				agent, err := core.Agent(1)
				if err != nil {
					b.Fatal(err)
				}
				ranges := agent.Borrowed()
				node, err := core.Cluster().Node(1)
				if err != nil {
					b.Fatal(err)
				}
				p := sys.Config()
				for t := 0; t < threads; t++ {
					stream, err := workloads.RandomStream(int64(t+1), ranges, 2000/threads, 0)
					if err != nil {
						b.Fatal(err)
					}
					th, err := cpu.NewThread(cpu.ThreadConfig{
						Engine: node.Engine(), Memory: node, Stream: stream,
						Core: t, WindowLocal: p.LocalOutstanding, WindowRemote: p.RemoteOutstanding,
					})
					if err != nil {
						b.Fatal(err)
					}
					th.Start(0)
				}
				core.Run()
			}
		})
	}
}

func BenchmarkAblation_Prefetch(b *testing.B) {
	runExperiment(b, "D", lastY("sequential stream over remote memory", "sim-µs/line@depth8"))
}

func BenchmarkAblation_ParallelPhase(b *testing.B) {
	runExperiment(b, "E", lastY("read-only phase", "sim-ms@8threads"))
}

func BenchmarkAblation_Fabric(b *testing.B) {
	runExperiment(b, "F", lastY("HT-over-Ethernet (switched)", "sim-µs/access"))
}

func BenchmarkAblation_IndexStructures(b *testing.B) {
	runExperiment(b, "G", lastY("hash index", "sim-µs/lookup@swap"))
}

func BenchmarkHashIndexSearchRemote(b *testing.B) {
	h, err := db.NewHashIndex(200000)
	if err != nil {
		b.Fatal(err)
	}
	for k := uint64(0); k < 200000; k++ {
		h.Insert(k*2, k)
	}
	p := params.Default()
	acc := memmodel.Remote{P: p, Hops: 1}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	var cost params.Duration
	for i := 0; i < b.N; i++ {
		_, _, c, _ := h.Search(uint64(rng.Intn(400000)), acc)
		cost += c
	}
	b.ReportMetric(float64(cost)/float64(b.N)/1e6, "sim-µs/lookup")
}

func BenchmarkHnCSealVerify(b *testing.B) {
	v := hnc.NewVerifier(3)
	payload := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := hnc.Frame{
			Src: 1, Dst: 3, Seq: uint64(i + 1),
			Payload: ht.Packet{Cmd: ht.CmdWrSized, Addr: addr.Phys(0x1000).WithNode(3), Count: 64, Data: payload},
		}
		if _, err := v.Accept(hnc.Seal(f)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHToEDelivery(b *testing.B) {
	f, err := htoe.New(simNew(), 16, htoe.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var now Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at, _ := f.Deliver(now, 1, addr.NodeID(i%15+2), 72)
		now = at
	}
}

func BenchmarkDbGet(b *testing.B) {
	sys, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	region, err := sys.Core().Region(1)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := db.Create(region, "bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	for k := uint64(0); k < 10000; k++ {
		if err := tbl.Put(k, []byte("0123456789abcdef0123456789abcdef")); err != nil {
			b.Fatal(err)
		}
	}
	acc := memmodel.Remote{P: params.Default(), Hops: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, _, err := tbl.Get(uint64(i)%10000, acc); err != nil || !found {
			b.Fatal(err)
		}
	}
}

// simNew keeps the htoe bench free of a direct sim import alias clash.
func simNew() *sim.Engine { return sim.New() }
