// Package ncdsm is the public face of the non-coherent distributed
// shared-memory library — a reproduction of "Getting Rid of Coherency
// Overhead for Memory-Hungry Applications" (Montaner, Silla, Fröning,
// Duato; IEEE CLUSTER 2010).
//
// The library models a cluster whose nodes can lend each other physical
// memory through a Remote Memory Controller (RMC): a process stays on
// one node's cores and caches (one coherency domain) while its memory
// region grows with frames reserved on other nodes. Accesses to those
// frames are plain loads and stores — the 14 most-significant physical-
// address bits route them through the RMC to the owning node with no
// software on the path and no inter-node coherency traffic, ever.
//
// Quick start:
//
//	sys, err := ncdsm.New(ncdsm.DefaultConfig())        // 16-node 4×4 prototype
//	region, err := sys.Region(1)                         // node 1's memory region
//	ptr, err := region.Malloc(32 << 30)                  // spills to remote nodes
//	err = region.Write(ptr, data)                        // functional access
//	v, err := region.ReadUint64(ptr)                     // functional load
//	err = region.Access(ncdsm.AccessRequest{             // timed access (simulated)
//		Pointer: ptr, Done: onDone,
//	})
//	sys.Run()
//	snap := sys.Metrics()                                // cluster-wide observability
//
// The packages under internal/ implement the substrates (HyperTransport
// and its High Node Count extension, the 2D-mesh fabric, caches, DRAM,
// the RMC itself, the OS reservation protocol, allocators, the swap and
// coherent-DSM baselines, and the evaluation harness); ncdsm re-exposes
// the surface a downstream user needs.
package ncdsm

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/addr"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/memdir"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/rmc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Config is the cluster calibration; see DefaultConfig.
type Config = params.Params

// DefaultConfig returns the paper's 16-node prototype: 4×4 mesh, 16
// cores and 16 GB per node, 8 GB per node pooled into a 128 GB cluster-
// wide shared pool, and the FPGA-era RMC timings of DESIGN.md §5.
func DefaultConfig() Config { return params.Default() }

// NodeID identifies a cluster node (1-based; 0 is reserved).
type NodeID = addr.NodeID

// Pointer is a virtual address inside a region's process.
type Pointer = vm.Virt

// Time is simulated time in picoseconds.
type Time = sim.Time

// FaultPlan is a seeded, deterministic fault schedule for the fabric:
// per-traversal drop/corrupt/delay probabilities, link-down windows,
// NACK storms, and node stalls. Set Config.Faults to arm it; a nil or
// empty plan leaves the system bit-identical to a fault-free build.
// Runs with the same plan (same seed) replay the same faults exactly.
type FaultPlan = faults.Plan

// FaultWindow is a half-open [Start, End) simulated-time interval.
type FaultWindow = faults.Window

// LinkFault schedules a bidirectional mesh-link outage.
type LinkFault = faults.LinkWindow

// NodeFault schedules a per-node fault window (storm or stall).
type NodeFault = faults.NodeWindow

// ParseFaultPlan reads the CLI spec syntax, e.g.
// "seed=2,drop=0.01,corrupt=0.001,delayp=0.05,delay=300ns,down=6-7@0:50us,storm=6@0:5us,stall=7@1us:2us".
func ParseFaultPlan(spec string) (*FaultPlan, error) { return faults.Parse(spec) }

// BulkSpec is the parsed -bulk flag: burst-geometry overrides for the
// bulk data plane (cache lines per data frame, data frames per burst).
// The zero value overrides nothing; String renders exactly what
// ParseBulkSpec reads, so a tuning can be logged and replayed verbatim.
type BulkSpec = params.BulkSpec

// ParseBulkSpec reads the CLI -bulk syntax: "on" (the defaults) or
// "frame=16,maxframes=256".
func ParseBulkSpec(spec string) (BulkSpec, error) { return params.ParseBulk(spec) }

// WindowMode selects the sharded engine's lookahead schedule (the CLIs'
// -window flag): uniform single-hop windows, distance-aware windows
// from partition geometry, or adaptive barrier elision (the default).
// Figures and metrics are byte-identical under every mode; only the
// barrier frequency — wall-clock speed — changes.
type WindowMode = params.WindowMode

// ParseWindowMode reads the CLI -window syntax: "uniform", "distance",
// or "elide". The empty string selects the default (elide).
func ParseWindowMode(s string) (WindowMode, error) { return params.ParseWindowMode(s) }

// LinkLatSpec is the parsed -linklat flag: per-axis and per-edge mesh
// link traversal latencies. The zero value overrides nothing (every
// edge at the calibrated hop latency); String renders exactly what
// ParseLinkLatSpec reads.
type LinkLatSpec = params.LinkLatSpec

// ParseLinkLatSpec reads the CLI -linklat syntax, e.g.
// "x=100ns,y=140ns,edge=1.0-2.0:250ns".
func ParseLinkLatSpec(spec string) (LinkLatSpec, error) { return params.ParseLinkLat(spec) }

// ShardGateError is returned when a feature that only runs on the
// single-shard engine (today: the bulk data plane) is combined with
// Shards > 1. Detect it with errors.As.
type ShardGateError = params.ShardGateError

// ParseMesh reads the CLI -mesh syntax "WxH" (e.g. "16x16") and returns
// the dimensions. An empty spec returns (0, 0): keep the calibrated
// default.
func ParseMesh(spec string) (w, h int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	i := strings.IndexByte(spec, 'x')
	if i < 0 {
		return 0, 0, fmt.Errorf("ncdsm: mesh spec %q is not WxH (e.g. 16x16)", spec)
	}
	w, errW := strconv.Atoi(spec[:i])
	h, errH := strconv.Atoi(spec[i+1:])
	if errW != nil || errH != nil || w < 2 || h < 2 {
		return 0, 0, fmt.Errorf("ncdsm: mesh spec %q must be WxH with both dimensions >= 2", spec)
	}
	return w, h, nil
}

// UnreachableError is the typed failure a request ends with when its
// destination stays unreachable past the retransmit budget. Only timed
// accesses under a fault plan can observe it.
type UnreachableError = rmc.UnreachableError

// Placement selects how a growing region chooses donor nodes.
type Placement = memdir.Policy

// Placement policies.
const (
	// PlacementMostFree borrows from the node with the most free pooled
	// memory (spreads load).
	PlacementMostFree = memdir.MostFree
	// PlacementNearest borrows from the closest node with enough memory
	// (minimizes access latency).
	PlacementNearest = memdir.Nearest
)

// System is an assembled cluster: hardware, per-node OS agents, and the
// free-memory directory.
type System struct {
	inner *core.System
}

// New builds a system from a configuration.
func New(cfg Config) (*System, error) {
	s, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &System{inner: s}, nil
}

// Config returns the system's calibration.
func (s *System) Config() Config { return s.inner.Params() }

// Nodes returns the cluster's node count.
func (s *System) Nodes() int { return s.inner.Cluster().Nodes() }

// PoolFree returns the free bytes remaining in the cluster-wide pool.
func (s *System) PoolFree() uint64 { return s.inner.Directory().TotalFree() }

// Region returns the memory region anchored at a node (one per node,
// created on first use). See Region for what it can do.
func (s *System) Region(n NodeID) (*Region, error) {
	r, err := s.inner.Region(n)
	if err != nil {
		return nil, err
	}
	return &Region{inner: r, sys: s}, nil
}

// Run advances the simulation until all scheduled work completes and
// returns the final simulated time. Timed accesses (Region.Access) only
// complete under Run.
func (s *System) Run() Time { return s.inner.Run() }

// Now returns the current simulated time — pass it as the issue time of
// accesses submitted after a previous Run.
func (s *System) Now() Time { return s.inner.Now() }

// Core returns the underlying core.System for advanced use (experiment
// drivers, direct cluster access). The internal API is not covered by
// this package's compatibility surface.
func (s *System) Core() *core.System { return s.inner }

// Snapshot is a point-in-time copy of every metric the system exposes:
// counters, gauges, and latency histograms covering the RMCs, the HNC
// framing layer, the mesh links, the caches, the DRAM controllers, and
// the event engine itself. Snapshots are plain values — safe to keep,
// compare, merge, and render (JSON, Prometheus) after the system is
// gone. Family names are the ncdsm_* constants in internal/metrics.
type Snapshot = metrics.Snapshot

// NodeMetrics is a per-node rollup extracted from a Snapshot.
type NodeMetrics = metrics.NodeView

// LinkMetrics is a per-link (from, to, class) rollup extracted from a
// Snapshot.
type LinkMetrics = metrics.LinkView

// Metrics captures a snapshot of the system's metrics registry. Every
// instrument is sampled lazily at snapshot time, so calling it after
// Run reflects the whole simulation; snapshots taken from the same
// sequence of operations are byte-identical run to run.
func (s *System) Metrics() Snapshot { return s.inner.Registry().Snapshot() }

// MemoryMap writes a node's view of the cluster memory map (the paper's
// Figure 3) to w.
func (s *System) MemoryMap(n NodeID, w io.Writer) error {
	node, err := s.inner.Cluster().Node(n)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, node.MemMap().String())
	return err
}

// Region is one node's coherency domain plus the memory it aggregates.
type Region struct {
	inner *core.Region
	sys   *System
}

// Node returns the region's anchor node.
func (r *Region) Node() NodeID { return r.inner.Node() }

// SetPlacement selects the donor policy for implicit growth.
func (r *Region) SetPlacement(p Placement) { r.inner.Policy = p }

// SetDonors pins implicit growth to an explicit donor list, in order.
func (r *Region) SetDonors(donors ...NodeID) { r.inner.Donors = donors }

// Malloc allocates size bytes in the region's heap — locally while the
// node's private memory lasts, then transparently from remote nodes via
// the reservation protocol, exactly like the paper's interposed malloc.
func (r *Region) Malloc(size uint64) (Pointer, error) { return r.inner.Malloc(size) }

// Free releases a Malloc allocation.
func (r *Region) Free(p Pointer) error { return r.inner.Free(p) }

// Trim returns idle heap arenas to their owners: local frames to the
// node's private zone, borrowed frames to their donors' pools. This is
// the hot-remove flow — a region shrinks when a phase's peak passes.
func (r *Region) Trim() (uint64, error) { return r.inner.Trim() }

// Grow explicitly borrows size bytes from a donor chosen by the
// placement policy and maps them, returning the virtual base and the
// donor node.
func (r *Region) Grow(size uint64) (Pointer, NodeID, error) {
	rng, err := r.inner.Grow(size)
	if err != nil {
		return 0, 0, err
	}
	base, err := r.inner.MapBorrowed(rng)
	if err != nil {
		return 0, 0, err
	}
	return base, rng.Node(), nil
}

// GrowFrom is Grow with an explicit donor.
func (r *Region) GrowFrom(donor NodeID, size uint64) (Pointer, error) {
	rng, err := r.inner.GrowFrom(donor, size)
	if err != nil {
		return 0, err
	}
	return r.inner.MapBorrowed(rng)
}

// BorrowedBytes reports how much remote memory the region holds.
func (r *Region) BorrowedBytes() uint64 { return r.inner.Agent().BorrowedBytes() }

// EffectiveMemory reports the memory a process in this region can use:
// the node's private memory plus all borrowings.
func (r *Region) EffectiveMemory() uint64 { return r.inner.Agent().EffectiveMemory() }

// Write stores data at a pointer (functional path; crosses nodes
// transparently).
func (r *Region) Write(p Pointer, data []byte) error { return r.inner.Write(p, data) }

// Read loads len(buf) bytes at a pointer (functional path).
func (r *Region) Read(p Pointer, buf []byte) error { return r.inner.Read(p, buf) }

// WriteUint64 stores a word.
func (r *Region) WriteUint64(p Pointer, v uint64) error { return r.inner.WriteUint64(p, v) }

// ReadUint64 loads a word.
func (r *Region) ReadUint64(p Pointer) (uint64, error) { return r.inner.ReadUint64(p) }

// AccessRequest describes one timed load or store. The zero value of
// every field but Pointer is meaningful: issue at time 0, from core 0,
// a read, with no completion callback.
type AccessRequest struct {
	// Now is the simulated issue time (use System.Now after a Run).
	Now Time
	// Core is the issuing core on the region's anchor node.
	Core int
	// Pointer is the virtual address to access.
	Pointer Pointer
	// Write selects a store; the default is a load.
	Write bool
	// Done, if set, fires at the simulated completion time once
	// System.Run executes.
	Done func(Time)
}

// Access issues one timed access through the full simulated memory path
// (TLB, cache hierarchy, BARs, RMC, mesh). It is AccessBatch of one —
// the batch path is the only code path.
func (r *Region) Access(req AccessRequest) error {
	batch := [1]AccessRequest{req}
	return r.AccessBatch(batch[:])
}

// AccessBatch issues a batch of timed accesses in order. Each request
// keeps its own completion callback; the batch is the paper's access
// discipline stated honestly — a workload hands the memory system its
// whole access list and lets the windows and queues pipeline it, rather
// than metering requests one call at a time. Line-granular cached
// accesses go through the cache hierarchy exactly as single Access
// calls always did; use ReadBulk/WriteBulk/Copy when the workload moves
// ranges, not lines.
func (r *Region) AccessBatch(reqs []AccessRequest) error {
	for i := range reqs {
		done := reqs[i].Done
		if done == nil {
			done = nopAccessDone
		}
		if err := r.inner.Access(reqs[i].Now, reqs[i].Core, reqs[i].Pointer, reqs[i].Write, done); err != nil {
			return fmt.Errorf("ncdsm: batch access %d: %w", i, err)
		}
	}
	return nil
}

// nopAccessDone keeps callback-less accesses allocation-free.
func nopAccessDone(Time) {}

// Span selects one byte range of a bulk operation at a line-aligned
// offset from the operation's base pointer — the columnar shape: one
// span per segment of a projected column, one operation per scan.
type Span = core.Span

// BulkDone observes a bulk operation's completion: the simulated time
// its last burst drained, and the first failure (only possible under a
// fault plan) if any burst was abandoned.
type BulkDone = func(Time, error)

// ReadBulk issues one timed scatter-gather read of the spans (relative
// to p) into buf, as doorbell-batched RMC bursts — one descriptor per
// owning node carrying all of that node's line ranges, serviced as a
// pipelined burst. The gathered bytes land in buf when System.Run
// drains the operation; ownership of buf transfers to the operation
// until then (callers must not touch it in between). Pass a BulkDone to
// observe the completion time.
//
// Bulk transfers bypass the coherent caches — they are DMA, not loads:
// flush first (BeginParallelRead) if cached copies may be dirty.
func (r *Region) ReadBulk(p Pointer, spans []Span, buf []byte, done ...BulkDone) error {
	return r.inner.ReadBulk(r.sys.Now(), p, spans, buf, bulkDone(done))
}

// WriteBulk issues one timed scatter-gather write: data (span order,
// exactly covering the spans) reaches the owning nodes' memory when
// System.Run drains the operation. Ownership of data transfers to the
// operation until it completes; the buffer is never recycled into
// internal pools, so it returns to the caller intact.
func (r *Region) WriteBulk(p Pointer, spans []Span, data []byte, done ...BulkDone) error {
	return r.inner.WriteBulk(r.sys.Now(), p, spans, data, bulkDone(done))
}

// Copy issues one timed region-to-region copy of n bytes from src to
// dst (both line-aligned, n a line multiple). Pieces whose source and
// destination both live on remote nodes move server-to-server over the
// fabric — the bytes never transit this node.
func (r *Region) Copy(dst, src Pointer, n uint64, done ...BulkDone) error {
	return r.inner.CopyBulk(r.sys.Now(), dst, src, n, bulkDone(done))
}

// bulkDone folds the optional completion observers into one callback.
func bulkDone(done []BulkDone) func(Time, error) {
	switch len(done) {
	case 0:
		return nopBulkDone
	case 1:
		return done[0]
	default:
		return func(t Time, err error) {
			for _, d := range done {
				d(t, err)
			}
		}
	}
}

func nopBulkDone(Time, error) {}

// BeginParallelRead flushes the node's caches and enters the read-only
// parallel phase of paper Section IV-B: any core may then read remote
// data safely with no inter-node coherency, but writes are rejected
// until BeginSerial. Returns the number of dirty lines flushed.
func (r *Region) BeginParallelRead() int {
	return r.inner.BeginParallelRead(r.sys.Now())
}

// BeginSerial returns to the single-writer phase, bound to coreID.
func (r *Region) BeginSerial(coreID int) { r.inner.BeginSerial(coreID) }

// Owner reports which node physically holds the byte behind a pointer.
func (r *Region) Owner(p Pointer) (NodeID, error) {
	pa, err := r.inner.Translate(p)
	if err != nil {
		return 0, err
	}
	if pa.Canonical(r.Node()).IsLocal() {
		return r.Node(), nil
	}
	return pa.Node(), nil
}

// ExperimentOptions configures an experiment run. Use
// DefaultExperimentOptions and override fields; the zero value is
// invalid (Scale must be positive — there is no sentinel).
type ExperimentOptions struct {
	// Scale multiplies workload sizes; 1.0 reproduces the paper-sized
	// runs, small fractions finish in seconds. Must be > 0.
	Scale float64
	// Parallel bounds how many sweep points simulate concurrently: 0
	// means all cores, 1 is fully serial. Results — figures and metrics
	// alike — are byte-identical at every setting.
	Parallel int
	// Seed varies the deterministic workload inputs (default 1).
	Seed int64
	// Faults, when non-nil and non-empty, runs every simulated point of
	// the experiment under the fault plan. Results stay deterministic:
	// each sweep point binds the plan to its own injector stream, so
	// merged figures and metrics are byte-identical at every Parallel
	// setting.
	Faults *FaultPlan
	// Bulk overrides the bulk data plane's burst geometry for every
	// simulated point (the CLIs' -bulk flag). The zero value keeps the
	// defaults and is byte-identical to not setting it.
	Bulk BulkSpec
	// MeshWidth and MeshHeight override the fabric mesh dimensions (the
	// CLIs' -mesh WxH flag). Zero keeps the calibrated 4×4. Both must be
	// set together.
	MeshWidth, MeshHeight int
	// Shards splits the mesh across that many concurrent conservative
	// PDES shards (the CLIs' -shards flag). 0 or 1 is single-shard;
	// results are byte-identical at every setting.
	Shards int
	// Window selects the sharded engine's lookahead schedule (the CLIs'
	// -window flag): "uniform", "distance", or "elide". Empty keeps the
	// default (elide). Results are byte-identical under every mode.
	Window string
	// LinkLat overrides mesh link traversal latencies per axis or per
	// edge (the CLIs' -linklat flag). The zero value keeps the uniform
	// calibrated hop latency and is byte-identical to not setting it.
	LinkLat LinkLatSpec
}

// DefaultExperimentOptions returns paper-scale, all-cores options.
func DefaultExperimentOptions() ExperimentOptions {
	return ExperimentOptions{Scale: 1.0, Parallel: 0, Seed: 1}
}

func (o ExperimentOptions) internal() (experiments.Options, error) {
	if o.Scale <= 0 {
		return experiments.Options{}, fmt.Errorf("ncdsm: ExperimentOptions.Scale must be > 0 (got %v); start from DefaultExperimentOptions", o.Scale)
	}
	io := experiments.DefaultOptions()
	io.Scale = o.Scale
	io.Parallel = o.Parallel
	if o.Seed != 0 {
		io.Seed = o.Seed
	}
	if !o.Faults.Empty() {
		if err := o.Faults.Validate(); err != nil {
			return experiments.Options{}, err
		}
		io.P.Faults = o.Faults
	}
	if !o.Bulk.Empty() {
		if err := o.Bulk.Validate(); err != nil {
			return experiments.Options{}, err
		}
		o.Bulk.Apply(&io.P)
	}
	if o.MeshWidth != 0 || o.MeshHeight != 0 {
		if o.MeshWidth <= 0 || o.MeshHeight <= 0 {
			return experiments.Options{}, fmt.Errorf("ncdsm: MeshWidth and MeshHeight must be set together and positive (got %dx%d)", o.MeshWidth, o.MeshHeight)
		}
		io.P.MeshWidth, io.P.MeshHeight = o.MeshWidth, o.MeshHeight
	}
	if o.Shards != 0 {
		io.P.Shards = o.Shards
	}
	mode, err := params.ParseWindowMode(o.Window)
	if err != nil {
		return experiments.Options{}, err
	}
	io.P.Window = mode
	if !o.LinkLat.Empty() {
		io.P.LinkLat = o.LinkLat
	}
	if !o.Bulk.Empty() && io.P.Shards > 1 {
		// Fail loudly up front: the bulk data plane only runs on the
		// single-shard engine, and silently downgrading the shard count
		// would change what the user asked to measure.
		return experiments.Options{}, &params.ShardGateError{Feature: "the bulk data plane", Shards: io.P.Shards}
	}
	if err := io.P.Validate(); err != nil {
		return experiments.Options{}, err
	}
	return io, nil
}

// Experiment regenerates one of the paper's tables/figures ("table1",
// "fig6".."fig11", "eq", ablations "A".."H") and returns its rendered
// text table.
func Experiment(id string, opts ExperimentOptions) (string, error) {
	fig, _, err := RunExperiment(id, opts)
	if err != nil {
		return "", err
	}
	return fig.Render(), nil
}

// ExperimentFigure is Experiment returning the structured figure.
func ExperimentFigure(id string, opts ExperimentOptions) (*stats.Figure, error) {
	fig, _, err := RunExperiment(id, opts)
	return fig, err
}

// RunExperiment regenerates one experiment and returns both its figure
// and the merged metrics snapshot of every simulation the generator
// ran. Snapshots are folded in sweep submission order, so the result is
// byte-identical at every Parallel setting. Macro-layer experiments
// (fig9–fig11, "eq", "G") run no event-driven simulations and return an
// empty snapshot.
func RunExperiment(id string, opts ExperimentOptions) (*stats.Figure, Snapshot, error) {
	gen, err := experiments.Lookup(id)
	if err != nil {
		return nil, Snapshot{}, err
	}
	o, err := opts.internal()
	if err != nil {
		return nil, Snapshot{}, err
	}
	var merged metrics.Merged
	o.Metrics = &merged
	fig, err := gen(o)
	if err != nil {
		return nil, Snapshot{}, err
	}
	return fig, merged.Snapshot(), nil
}

// Experiments lists the available experiment identifiers in order.
func Experiments() []string {
	var ids []string
	for _, e := range experiments.Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// ---- consistency laboratory ----

// ConsistencyVerdict is the checker's judgment of one recorded history:
// whether it is sequentially consistent (some interleaving of the
// per-node program orders explains every read) and per-location
// linearizable (every read returns the newest write at issue time).
type ConsistencyVerdict = consistency.Verdict

// LitmusOutcome is one (litmus test, protocol) result: the recorded
// history, its verdict, and whether it matches the protocol's expected
// verdict.
type LitmusOutcome = consistency.LitmusResult

// ConsistencyProtocols lists the consistency-lab protocol names in
// presentation order: "msi" (directory MSI, sequential consistency),
// "mesi" (MSI plus an exclusive state with silent E→M upgrades, same
// model), "rmc" (the paper's non-coherent posted-write mode, TSO), and
// "rc" (release consistency).
func ConsistencyProtocols() []string { return consistency.Names() }

// Litmus runs the seeded litmus suite (store buffering, message
// passing with and without acquire, IRIW, coherence read-read) under
// the named protocols — all of them when none are given — and returns
// every outcome in suite × protocol order. Outcomes are deterministic:
// fixed programs, fixed schedules, pure protocol state machines.
func Litmus(cfg Config, protocols ...string) ([]LitmusOutcome, error) {
	return consistency.RunSuite(cfg, protocols)
}

// LitmusReport runs the litmus suite and renders a text table of
// verdicts, flagging any outcome that deviates from its protocol's
// expectation.
func LitmusReport(cfg Config, protocols ...string) (string, error) {
	results, err := Litmus(cfg, protocols...)
	if err != nil {
		return "", err
	}
	var b []byte
	b = fmt.Appendf(b, "%-12s %-5s %-22s %-22s %s\n", "test", "proto", "verdict", "expected", "match")
	for _, r := range results {
		exp := consistency.Verdict{SC: r.Expected.SC, PerLoc: r.Expected.PerLoc}
		mark := "ok"
		if !r.Match {
			mark = "MISMATCH"
		}
		b = fmt.Appendf(b, "%-12s %-5s %-22s %-22s %s\n", r.Test, r.Protocol, r.Verdict.Summary(), exp.Summary(), mark)
	}
	return string(b), nil
}

// ExploreSpec configures the schedule-exploration model checker:
// exhaustive enumeration up to MaxDepth total instructions (with a
// sleep-set reduction), seeded sampling of Samples schedules beyond,
// sharded across Parallel workers with an order-identical merge.
type ExploreSpec = consistency.ExploreSpec

// ExploreOutcome summarizes the exploration of one (litmus test,
// protocol) pair: schedule counts, per-checker violation counts, and
// the lexicographically minimal violating schedule per category.
type ExploreOutcome = consistency.ExploreResult

// DefaultExploreSpec is the explorer's default budget: exhaustive up to
// 6 instructions, 500 sampled schedules beyond, seed 1, serial.
func DefaultExploreSpec() ExploreSpec { return consistency.DefaultExploreSpec() }

// Explore runs the schedule-exploration model checker over the litmus
// suite under the named protocols (all of them when none are given).
// Unlike Litmus — one seeded schedule per test — exploration asks the
// existential question: does ANY interleaving within the budget violate
// the protocol's consistency model or its internal invariants? Output
// is deterministic: same spec and seed, byte-identical results at any
// Parallel setting.
func Explore(cfg Config, spec ExploreSpec, protocols ...string) ([]ExploreOutcome, error) {
	return consistency.ExploreLitmus(cfg, protocols, spec)
}

// ExploreReport runs Explore and renders a text table — one row per
// (test, protocol) — followed by the minimal violating trace of every
// result whose violations indict the protocol implementation (any
// violation on a sequentially consistent protocol; invariant failures
// or undecided searches on any protocol).
func ExploreReport(cfg Config, spec ExploreSpec, protocols ...string) (string, int, error) {
	results, err := Explore(cfg, spec, protocols...)
	if err != nil {
		return "", 0, err
	}
	var b []byte
	b = fmt.Appendf(b, "%-12s %-5s %-10s %9s %7s %7s %7s %9s\n",
		"test", "proto", "coverage", "schedules", "scfail", "perloc", "invar", "undecided")
	problems := 0
	for _, r := range results {
		cov := "sampled"
		if r.Exhaustive {
			cov = "exhaustive"
		}
		b = fmt.Appendf(b, "%-12s %-5s %-10s %9d %7d %7d %7d %9d\n",
			r.Test, r.Protocol, cov, r.Schedules, r.SCFails, r.PerLocFails, r.InvariantFails, r.Undecided)
	}
	for _, r := range results {
		probs := r.Problems()
		if len(probs) == 0 {
			continue
		}
		problems += len(probs)
		b = fmt.Appendf(b, "\n%s/%s PROBLEMS:\n", r.Test, r.Protocol)
		for _, p := range probs {
			b = fmt.Appendf(b, "  - %s\n", p)
		}
		if v := r.FirstViolation(); v != nil {
			b = fmt.Appendf(b, "  minimal violating %s", v.Trace())
		}
	}
	return string(b), problems, nil
}

// LitmusTrace renders a litmus outcome's schedule and history as the
// replayable trace an operator needs when a verdict deviates: feed the
// schedule back to the same test and protocol and the identical history
// returns.
func LitmusTrace(r LitmusOutcome) string {
	o := consistency.ScheduleOutcome{Schedule: r.Schedule, Verdict: r.Verdict, History: r.History}
	return o.Trace()
}

// Validate checks a configuration without building a system.
func Validate(cfg Config) error { return cfg.Validate() }

// Describe returns a one-paragraph summary of the system a config
// builds, for CLI banners.
func Describe(cfg Config) string {
	return fmt.Sprintf("%d-node %dx%d mesh, %d cores and %d GB per node, %d GB pooled (%d GB cluster pool), remote round trip %.2f µs at 1 hop",
		cfg.Nodes(), cfg.MeshWidth, cfg.MeshHeight, cfg.CoresPerNode,
		cfg.MemPerNode>>30, cfg.PooledMemPerNode()>>30, cfg.PoolSize()>>30,
		float64(cfg.RemoteRoundTrip(1))/float64(params.Microsecond))
}
