package ncdsm

import (
	"bytes"
	"strings"
	"testing"
)

func newSys(t *testing.T) *System {
	t.Helper()
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := Validate(cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes() != 16 || cfg.PoolSize() != 128<<30 {
		t.Errorf("prototype geometry wrong: %d nodes, %d pool", cfg.Nodes(), cfg.PoolSize())
	}
	bad := cfg
	bad.MeshWidth = 0
	if Validate(bad) == nil {
		t.Error("invalid config validated")
	}
	if _, err := New(bad); err == nil {
		t.Error("invalid config built")
	}
	if !strings.Contains(Describe(cfg), "16-node") {
		t.Errorf("Describe = %q", Describe(cfg))
	}
}

func TestSystemBasics(t *testing.T) {
	sys := newSys(t)
	if sys.Nodes() != 16 {
		t.Errorf("Nodes = %d", sys.Nodes())
	}
	if sys.PoolFree() != 128<<30 {
		t.Errorf("PoolFree = %d", sys.PoolFree())
	}
	if sys.Config().Nodes() != 16 {
		t.Error("Config lost")
	}
	if sys.Core() == nil {
		t.Error("Core() nil")
	}
	var buf bytes.Buffer
	if err := sys.MemoryMap(3, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "RMC") {
		t.Error("memory map missing RMC segments")
	}
	if err := sys.MemoryMap(0, &buf); err == nil {
		t.Error("memory map for node 0")
	}
}

func TestMallocGrowReadWrite(t *testing.T) {
	sys := newSys(t)
	region, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	region.SetPlacement(PlacementNearest)

	ptr, err := region.Malloc(12 << 30) // forces remote backing
	if err != nil {
		t.Fatal(err)
	}
	if region.BorrowedBytes() == 0 {
		t.Error("12 GB malloc borrowed nothing")
	}
	if region.EffectiveMemory() <= sys.Config().PrivateMemPerNode {
		t.Error("effective memory did not grow")
	}

	msg := []byte("hello, remote world")
	if err := region.Write(ptr+9<<30, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := region.Read(ptr+9<<30, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("read back %q", got)
	}

	owner, err := region.Owner(ptr + 9<<30)
	if err != nil {
		t.Fatal(err)
	}
	if owner == 0 {
		t.Error("no owner")
	}
	if err := region.Free(ptr); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitGrow(t *testing.T) {
	sys := newSys(t)
	region, err := sys.Region(2)
	if err != nil {
		t.Fatal(err)
	}
	region.SetDonors(11)
	ptr, donor, err := region.Grow(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if donor != 11 {
		t.Errorf("donor = %d, want 11", donor)
	}
	if owner, _ := region.Owner(ptr); owner != 11 {
		t.Errorf("owner = %d", owner)
	}
	ptr2, err := region.GrowFrom(12, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if owner, _ := region.Owner(ptr2); owner != 12 {
		t.Errorf("owner = %d, want 12", owner)
	}
}

func TestWordAccessors(t *testing.T) {
	sys := newSys(t)
	region, _ := sys.Region(1)
	ptr, err := region.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := region.WriteUint64(ptr, 12345); err != nil {
		t.Fatal(err)
	}
	v, err := region.ReadUint64(ptr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 12345 {
		t.Errorf("v = %d", v)
	}
}

func TestTimedAccess(t *testing.T) {
	sys := newSys(t)
	region, _ := sys.Region(1)
	ptr, err := region.GrowFrom(2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var done Time
	req := AccessRequest{Now: sys.Now(), Pointer: ptr, Done: func(t Time) { done = t }}
	if err := region.Access(req); err != nil {
		t.Fatal(err)
	}
	end := sys.Run()
	if done == 0 || done > end {
		t.Errorf("done = %d, end = %d", done, end)
	}
	if done < sys.Config().RemoteRoundTrip(1) {
		t.Errorf("remote access faster than physics: %d", done)
	}
	if sys.Now() != end {
		t.Errorf("Now = %d after Run returned %d", sys.Now(), end)
	}
}

func TestExperimentAPI(t *testing.T) {
	ids := Experiments()
	if len(ids) != 18 {
		t.Fatalf("Experiments lists %d ids", len(ids))
	}
	opts := DefaultExperimentOptions()
	opts.Scale = 0.01
	out, err := Experiment("fig6", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig6") || !strings.Contains(out, "hops") {
		t.Errorf("experiment output malformed:\n%s", out)
	}
	fig, err := ExperimentFigure("eq", opts)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "eq" || len(fig.Series) == 0 {
		t.Error("structured figure malformed")
	}
	if _, err := Experiment("nope", DefaultExperimentOptions()); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := ExperimentFigure("nope", DefaultExperimentOptions()); err == nil {
		t.Error("unknown experiment figure accepted")
	}
	if _, err := Experiment("fig6", ExperimentOptions{}); err == nil {
		t.Error("zero-value options accepted; Scale must be validated")
	}
	if _, _, err := RunExperiment("fig6", ExperimentOptions{Scale: -1}); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestRunExperimentMetrics(t *testing.T) {
	opts := DefaultExperimentOptions()
	opts.Scale = 0.005
	fig, snap, err := RunExperiment("fig6", opts)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig6" {
		t.Errorf("fig.ID = %q", fig.ID)
	}
	if snap.Total("ncdsm_rmc_requests_total") == 0 {
		t.Error("merged snapshot has no RMC requests after fig6")
	}
	if len(snap.Nodes()) == 0 {
		t.Error("merged snapshot has no per-node views")
	}
}

func TestSystemMetricsFacade(t *testing.T) {
	sys := newSys(t)
	region, _ := sys.Region(1)
	ptr, err := region.GrowFrom(2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := region.Access(AccessRequest{Pointer: ptr}); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	snap := sys.Metrics()
	if snap.Total("ncdsm_rmc_requests_total") == 0 {
		t.Error("no RMC requests in facade snapshot after remote access")
	}
	if !strings.Contains(snap.Prometheus(), "ncdsm_rmc_requests_total") {
		t.Error("Prometheus rendering missing RMC family")
	}
}

func TestPhaseAPIThroughFacade(t *testing.T) {
	sys := newSys(t)
	region, _ := sys.Region(1)
	ptr, err := region.GrowFrom(2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := region.Access(AccessRequest{Now: sys.Now(), Pointer: ptr, Write: true}); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if flushed := region.BeginParallelRead(); flushed == 0 {
		t.Error("no dirty lines flushed entering the parallel phase")
	}
	if err := region.Access(AccessRequest{Now: sys.Now(), Core: 5, Pointer: ptr}); err != nil {
		t.Errorf("parallel read rejected: %v", err)
	}
	if err := region.Access(AccessRequest{Now: sys.Now(), Pointer: ptr, Write: true}); err == nil {
		t.Error("write accepted in parallel-read phase")
	}
	region.BeginSerial(0)
	if err := region.Access(AccessRequest{Now: sys.Now(), Pointer: ptr, Write: true}); err != nil {
		t.Errorf("serial write rejected: %v", err)
	}
	sys.Run()
}

func TestTrimReturnsMemoryToPool(t *testing.T) {
	sys := newSys(t)
	region, _ := sys.Region(1)
	before := sys.PoolFree()
	ptr, err := region.Malloc(20 << 30) // all remote beyond private
	if err != nil {
		t.Fatal(err)
	}
	if sys.PoolFree() >= before {
		t.Fatal("malloc did not draw from the pool")
	}
	if err := region.Free(ptr); err != nil {
		t.Fatal(err)
	}
	released, err := region.Trim()
	if err != nil {
		t.Fatal(err)
	}
	if released == 0 {
		t.Fatal("trim released nothing")
	}
	if sys.PoolFree() != before {
		t.Errorf("pool = %d after trim, want %d restored", sys.PoolFree(), before)
	}
	if region.BorrowedBytes() != 0 {
		t.Errorf("still borrowing %d bytes after trim", region.BorrowedBytes())
	}
	// The region still works afterwards.
	if _, err := region.Malloc(1 << 20); err != nil {
		t.Fatal(err)
	}
}

func TestConsistencyFacade(t *testing.T) {
	protos := ConsistencyProtocols()
	if len(protos) != 4 || protos[1] != "mesi" {
		t.Fatalf("ConsistencyProtocols = %v, want msi, mesi, rmc, rc", protos)
	}
	results, err := Litmus(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("empty litmus results")
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("%s/%s: verdict %+v deviates from expected %+v", r.Test, r.Protocol, r.Verdict, r.Expected)
		}
	}
	subset, err := Litmus(DefaultConfig(), "rc")
	if err != nil {
		t.Fatal(err)
	}
	if len(subset)*4 != len(results) {
		t.Errorf("rc-only run returned %d results vs %d for all protocols", len(subset), len(results))
	}
	report, err := LitmusReport(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sb", "iriw", "msi", "rc", "SC=pass", "SC=FAIL", "ok"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "MISMATCH") {
		t.Errorf("report contains a mismatch:\n%s", report)
	}
	if _, err := Litmus(DefaultConfig(), "moesi"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// TestExploreFacade drives the schedule-exploration surface end to end
// at a small budget: clean results for every (test, protocol) pair, a
// rendered table with zero problems, and the determinism contract at
// the facade level.
func TestExploreFacade(t *testing.T) {
	spec := DefaultExploreSpec()
	spec.Samples = 50
	results, err := Explore(DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("empty explore results")
	}
	for _, r := range results {
		if probs := r.Problems(); len(probs) != 0 {
			t.Errorf("%s/%s: %v", r.Test, r.Protocol, probs)
		}
	}
	report, problems, err := ExploreReport(DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if problems != 0 {
		t.Errorf("%d problems reported:\n%s", problems, report)
	}
	for _, want := range []string{"sb", "mesi", "exhaustive", "sampled", "schedules"} {
		if !strings.Contains(report, want) {
			t.Errorf("explore report missing %q:\n%s", want, report)
		}
	}
	spec.Parallel = 8
	report8, _, err := ExploreReport(DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if report != report8 {
		t.Error("explore report differs between Parallel 1 and 8")
	}
}
