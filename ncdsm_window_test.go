package ncdsm

import (
	"errors"
	"testing"
)

// TestBulkShardGateTyped pins the loud failure mode for -bulk with
// -shards: a typed ShardGateError detectable with errors.As, instead of
// a silent downgrade to one shard.
func TestBulkShardGateTyped(t *testing.T) {
	bulk, err := ParseBulkSpec("on")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultExperimentOptions()
	opts.Scale = 0.01
	opts.Bulk = bulk
	opts.Shards = 4
	_, _, err = RunExperiment("table1", opts)
	var gate *ShardGateError
	if !errors.As(err, &gate) {
		t.Fatalf("RunExperiment with -bulk -shards 4 = %v, want a *ShardGateError", err)
	}
	if gate.Shards != 4 {
		t.Errorf("gate.Shards = %d, want 4", gate.Shards)
	}
}

// TestBulkShardGateAtRuntime checks the RMC-level gate: a burst issued
// on a multi-shard system fails with the same typed error.
func TestBulkShardGateAtRuntime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	p := growMapped(t, region, 2, 1<<20)
	sink := make([]byte, 4096)
	err = region.ReadBulk(p, []Span{{Offset: 0, Bytes: 4096}}, sink)
	var gate *ShardGateError
	if !errors.As(err, &gate) {
		t.Fatalf("ReadBulk on 4 shards = %v, want a *ShardGateError", err)
	}
}

// TestWindowModeFacadeIdentity renders the same experiment through the
// public API under every -window mode and requires identical figures —
// the schedule is a performance knob, never a results knob.
func TestWindowModeFacadeIdentity(t *testing.T) {
	opts := DefaultExperimentOptions()
	opts.Scale = 0.01
	opts.Shards = 4
	want, err := Experiment("table1", opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"uniform", "distance", "elide"} {
		o := opts
		o.Window = mode
		got, err := Experiment("table1", o)
		if err != nil {
			t.Fatalf("window=%s: %v", mode, err)
		}
		if got != want {
			t.Errorf("window=%s: figure differs from the default schedule", mode)
		}
	}
	if _, err := ParseWindowMode("sideways"); err == nil {
		t.Error("ParseWindowMode accepted an unknown mode")
	}
}
